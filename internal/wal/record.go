// Package wal is an append-only, segmented write-ahead log for the
// serving layer's incoming ratings. Every record is length-prefixed and
// CRC32-guarded, segments rotate by size, and Open truncates a torn tail
// (a record cut short by a crash mid-append) so recovery is clean. The
// log stores three record kinds:
//
//   - RecordRating: one core.RatingUpdate, appended by /rate before the
//     update is queued for application (write-ahead discipline);
//   - RecordBatchCommit: written after a micro-batch of ratings has been
//     folded into the serving model, recording the last rating sequence
//     the batch covered — replay regroups ratings into exactly the
//     batches the live process applied, which is what makes recovery
//     bit-for-bit identical to the uninterrupted run;
//   - RecordCheckpoint: written after a model snapshot lands on disk,
//     recording the last rating sequence the snapshot covers — segments
//     wholly below it can be pruned.
//
// The binary layout of one record frame is
//
//	uint32  body length (big endian)
//	uint32  CRC32-IEEE of body (big endian)
//	body:   1 byte record type | uint64 sequence | payload
//
// and every segment file starts with an 8-byte magic plus the sequence
// number the segment begins at (which also names the file).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"cfsf/internal/core"
)

// Type discriminates the record kinds stored in the log.
type Type uint8

const (
	// RecordRating carries one rating update.
	RecordRating Type = 1
	// RecordBatchCommit marks that every rating with sequence <= Covered
	// has been applied to the serving model, and that the ratings since
	// the previous commit formed one application batch.
	RecordBatchCommit Type = 2
	// RecordCheckpoint marks that a snapshot covering every rating with
	// sequence <= Covered is durable on disk.
	RecordCheckpoint Type = 3
)

// Record is one decoded log entry.
type Record struct {
	Type Type
	// Seq is the record's own position in the log (1-based, assigned at
	// append, strictly increasing across all record types).
	Seq uint64
	// Update is the rating payload; valid when Type == RecordRating.
	Update core.RatingUpdate
	// Covered is the last rating sequence a commit or checkpoint spans;
	// valid for RecordBatchCommit and RecordCheckpoint.
	Covered uint64
	// Shard is the model shard the record was routed to: the shard of
	// Update.User for ratings, the shard a commit's batch was applied on
	// for batch commits. Records written before sharding existed (32-byte
	// rating / 8-byte commit payloads) decode with Shard = -1, which
	// replay treats as "route by the recovered model's clustering".
	Shard int
}

const (
	frameHeaderSize = 8 // length + crc
	bodyHeaderSize  = 9 // type + seq
	// Payload sizes. Ratings and batch commits grew an int64 shard id when
	// the model was sharded; decode discriminates versions by length, and
	// the pre-shard sizes remain decodable so old logs replay unchanged.
	ratingPayloadV1  = 32      // user, item, value, time
	ratingPayload    = 40      // + shard
	coveredPayloadV1 = 8       // covered
	commitPayload    = 16      // covered + shard
	checkpointPay    = 8       // covered (checkpoints are shard-agnostic)
	maxBody          = 1 << 16 // far above any legal body; caps corrupt lengths
	ratingBodySize   = bodyHeaderSize + ratingPayload
	maxEncodedRecord = frameHeaderSize + ratingBodySize
)

var (
	// errShort reports that the buffer ends before the record does: at a
	// clean end-of-log this is simply "no more records", inside a file it
	// is a torn tail.
	errShort = errors.New("wal: truncated record")
	// errCorrupt reports a structurally broken record (bad CRC, bad
	// type, bad length). A torn tail usually surfaces as errShort, but a
	// crash that tore inside the frame header can also surface here.
	errCorrupt = errors.New("wal: corrupt record")
)

// appendRecord encodes rec onto buf and returns the extended slice.
func appendRecord(buf []byte, rec Record) []byte {
	var payload []byte
	switch rec.Type {
	case RecordRating:
		var p [ratingPayload]byte
		binary.BigEndian.PutUint64(p[0:], uint64(int64(rec.Update.User)))
		binary.BigEndian.PutUint64(p[8:], uint64(int64(rec.Update.Item)))
		binary.BigEndian.PutUint64(p[16:], math.Float64bits(rec.Update.Value))
		binary.BigEndian.PutUint64(p[24:], uint64(rec.Update.Time))
		binary.BigEndian.PutUint64(p[32:], uint64(int64(rec.Shard)))
		payload = p[:]
	case RecordBatchCommit:
		var p [commitPayload]byte
		binary.BigEndian.PutUint64(p[0:], rec.Covered)
		binary.BigEndian.PutUint64(p[8:], uint64(int64(rec.Shard)))
		payload = p[:]
	case RecordCheckpoint:
		var p [checkpointPay]byte
		binary.BigEndian.PutUint64(p[0:], rec.Covered)
		payload = p[:]
	default:
		panic(fmt.Sprintf("wal: unknown record type %d", rec.Type))
	}

	body := make([]byte, 0, bodyHeaderSize+len(payload))
	body = append(body, byte(rec.Type))
	body = binary.BigEndian.AppendUint64(body, rec.Seq)
	body = append(body, payload...)

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// decodeRecord decodes the first record in buf, returning it and the
// number of bytes consumed. errShort means buf ends before the record
// does; errCorrupt means the bytes cannot be a record at all.
func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < frameHeaderSize {
		return Record{}, 0, errShort
	}
	bodyLen := int(binary.BigEndian.Uint32(buf[0:4]))
	if bodyLen < bodyHeaderSize || bodyLen > maxBody {
		return Record{}, 0, fmt.Errorf("%w: body length %d", errCorrupt, bodyLen)
	}
	if len(buf) < frameHeaderSize+bodyLen {
		return Record{}, 0, errShort
	}
	body := buf[frameHeaderSize : frameHeaderSize+bodyLen]
	if crc := crc32.ChecksumIEEE(body); crc != binary.BigEndian.Uint32(buf[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", errCorrupt)
	}

	rec := Record{Type: Type(body[0]), Seq: binary.BigEndian.Uint64(body[1:9]), Shard: -1}
	payload := body[bodyHeaderSize:]
	switch rec.Type {
	case RecordRating:
		if len(payload) != ratingPayload && len(payload) != ratingPayloadV1 {
			return Record{}, 0, fmt.Errorf("%w: rating payload %d bytes", errCorrupt, len(payload))
		}
		rec.Update = core.RatingUpdate{
			User:  int(int64(binary.BigEndian.Uint64(payload[0:]))),
			Item:  int(int64(binary.BigEndian.Uint64(payload[8:]))),
			Value: math.Float64frombits(binary.BigEndian.Uint64(payload[16:])),
			Time:  int64(binary.BigEndian.Uint64(payload[24:])),
		}
		if len(payload) == ratingPayload {
			rec.Shard = int(int64(binary.BigEndian.Uint64(payload[32:])))
		}
	case RecordBatchCommit:
		if len(payload) != commitPayload && len(payload) != coveredPayloadV1 {
			return Record{}, 0, fmt.Errorf("%w: covered payload %d bytes", errCorrupt, len(payload))
		}
		rec.Covered = binary.BigEndian.Uint64(payload[0:])
		if len(payload) == commitPayload {
			rec.Shard = int(int64(binary.BigEndian.Uint64(payload[8:])))
		}
	case RecordCheckpoint:
		if len(payload) != checkpointPay {
			return Record{}, 0, fmt.Errorf("%w: covered payload %d bytes", errCorrupt, len(payload))
		}
		rec.Covered = binary.BigEndian.Uint64(payload[0:])
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown type %d", errCorrupt, body[0])
	}
	return rec, frameHeaderSize + bodyLen, nil
}
