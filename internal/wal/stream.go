package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Streaming read support: a Cursor walks the log from an arbitrary
// sequence and follows the live tail, returning raw encoded frames so a
// replication leader can relay bytes without re-encoding (followers see
// the exact CRC-framed records the leader's disk holds).
//
// A cursor position is only serveable while two invariants hold:
//
//   - availability: AvailableFrom() <= next — every sequence from the
//     cursor position to the tail is still present (nothing pruned out
//     from under the reader);
//   - batch exactness: DedupedBelow() < next — no compaction pass has
//     rewritten an undelivered record under a horizon, which would
//     destroy the batch-commit grouping bit-identical replay needs.
//
// Both are re-checked on every Next call, so a compaction pass racing an
// open stream surfaces as ErrRebootstrap — a clean "fetch a newer
// snapshot" signal — never as a silent gap or a regrouped batch.

// ErrRebootstrap reports that the log can no longer serve a cursor's
// position batch-exactly: the caller must restart from a newer durable
// snapshot instead of patching forward.
var ErrRebootstrap = errors.New("wal: position no longer streamable; re-bootstrap from a newer snapshot")

// ErrShortFrame reports that a buffer ends before the record frame does;
// stream consumers use it to detect "wait for more bytes".
var ErrShortFrame = errShort

// DecodeFrame decodes the first record frame in buf, returning the
// record and the encoded frame length. errors.Is(err, ErrShortFrame)
// means buf holds only a prefix of the frame.
func DecodeFrame(buf []byte) (Record, int, error) {
	return decodeRecord(buf)
}

// AppendFrame encodes rec as one log frame onto buf and returns the
// extended slice. rec.Seq is written as given (unlike the append path,
// which assigns sequences itself).
func AppendFrame(buf []byte, rec Record) []byte {
	return appendRecord(buf, rec)
}

// AppendSignal returns a channel that is closed by the next successful
// append, together with the last sequence at the time of the call.
// Callers that want to follow the tail without polling compare their
// position against the returned sequence and, when caught up, wait on
// the channel (typically alongside a timeout and a cancel signal).
func (w *WAL) AppendSignal() (<-chan struct{}, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.appendSig == nil {
		w.appendSig = make(chan struct{})
	}
	return w.appendSig, w.lastSeq
}

// notifyAppendLocked wakes AppendSignal waiters after lastSeq advanced.
//
//cfsf:locked mu callers hold the lock across the append
func (w *WAL) notifyAppendLocked() {
	if w.appendSig != nil {
		close(w.appendSig)
		w.appendSig = nil
	}
}

// Cursor streams encoded record frames from a fixed starting position
// through the live tail. It opens its own file handles, so it is safe
// alongside concurrent appends, rotations and compactions; it is NOT
// safe for concurrent use by multiple goroutines.
type Cursor struct {
	w    *WAL
	next uint64 // next sequence to deliver

	name   string // current source file ("" when unpositioned)
	isBase bool
	f      *os.File
	off    int64 // next read offset within f

	chunk []byte // scratch read buffer
}

// NewCursor returns a cursor that delivers every record with sequence >
// afterSeq, in order. It fails with ErrRebootstrap (possibly wrapped)
// when the log cannot serve that position batch-exactly — because the
// position was compacted under a horizon, pruned away, or lies beyond
// the log's end (a follower ahead of this leader must also restart from
// a snapshot rather than trust its divergent tail).
func (w *WAL) NewCursor(afterSeq uint64) (*Cursor, error) {
	if last := w.LastSeq(); afterSeq > last {
		return nil, fmt.Errorf("wal: cursor after %d beyond log end %d: %w", afterSeq, last, ErrRebootstrap)
	}
	c := &Cursor{w: w, next: afterSeq + 1}
	if err := c.checkStreamable(); err != nil {
		return nil, err
	}
	return c, nil
}

// checkStreamable re-validates the cursor's two serving invariants.
func (c *Cursor) checkStreamable() error {
	if db := c.w.DedupedBelow(); db >= c.next {
		return fmt.Errorf("wal: records through %d deduped under compaction horizon, cursor needs %d: %w", db, c.next, ErrRebootstrap)
	}
	if af := c.w.AvailableFrom(); af > c.next {
		return fmt.Errorf("wal: log starts at %d, cursor needs %d: %w", af, c.next, ErrRebootstrap)
	}
	return nil
}

// resolveFile names the file currently holding sequence next. It must
// only be called for next <= lastSeq; a miss means the position was
// compacted or pruned away.
func (w *WAL) resolveFile(next uint64) (name string, isBase bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.base != nil && next <= w.base.toSeq {
		return w.base.name, true, nil
	}
	for i := len(w.segments) - 1; i >= 0; i-- {
		if w.segments[i].firstSeq <= next {
			return w.segments[i].name, false, nil
		}
	}
	return "", false, fmt.Errorf("wal: no file holds sequence %d: %w", next, ErrRebootstrap)
}

// isLastSegment reports whether name is the currently active (append)
// segment. Decode errors there can be a concurrently in-flight write,
// not corruption.
func (w *WAL) isLastSegment(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments) > 0 && w.segments[len(w.segments)-1].name == name
}

// position opens the file holding c.next and seeks past its header. The
// frame-skip loop in Next handles files that start below c.next.
func (c *Cursor) position() error {
	name, isBase, err := c.w.resolveFile(c.next)
	if err != nil {
		return err
	}
	f, err := os.Open(filepath.Join(c.w.dir, name))
	if err != nil {
		// The file can vanish between resolve and open (compaction GC);
		// the caller re-resolves on the next pass.
		return fmt.Errorf("wal: cursor open %s: %w", name, err)
	}
	c.f, c.name, c.isBase = f, name, isBase
	if isBase {
		c.off = baseHeaderSize
	} else {
		c.off = segHeaderSize
	}
	return nil
}

// closeFile drops the current source file, if any.
func (c *Cursor) closeFile() {
	if c.f != nil {
		_ = c.f.Close()
		c.f = nil
	}
	c.name, c.isBase, c.off = "", false, 0
}

// Next appends encoded record frames to dst until roughly maxBytes are
// buffered or the cursor catches up with the log tail, returning the
// extended slice and the number of records appended. A caught-up cursor
// returns immediately with no frames; pair Next with AppendSignal to
// follow the tail without polling. ErrRebootstrap (possibly wrapped)
// means a compaction or prune overtook the position and the consumer
// must restart from a newer snapshot.
func (c *Cursor) Next(dst []byte, maxBytes int) ([]byte, int, error) {
	if c.chunk == nil {
		// Strictly larger than the biggest decodable frame (frame header +
		// maxBody), so a full chunk always either yields a frame or proves
		// corruption — a decode can never stall mid-chunk for lack of bytes.
		c.chunk = make([]byte, 128<<10)
	}
	appended := 0
	for sameFile := 0; ; {
		if err := c.checkStreamable(); err != nil {
			return dst, appended, err
		}
		last := c.w.LastSeq()
		if c.next > last {
			return dst, appended, nil // caught up
		}
		if c.f == nil {
			if err := c.position(); err != nil {
				if errors.Is(err, ErrRebootstrap) {
					return dst, appended, err
				}
				// Open raced a compaction GC: re-resolve, but not forever.
				if sameFile++; sameFile > 5 {
					return dst, appended, err
				}
				continue
			}
			sameFile = 0
		}

		n, rerr := c.f.ReadAt(c.chunk, c.off)
		consumed, derr := c.consume(c.chunk[:n], &dst, &appended, maxBytes)
		c.off += int64(consumed)
		if consumed > 0 {
			sameFile = 0
		}
		if derr != nil {
			if errors.Is(derr, errCorrupt) && !c.isBase && c.w.isLastSegment(c.name) {
				// A torn-looking frame at the active segment's tail is an
				// append still becoming visible; retry from the same offset
				// on the next call.
				return dst, appended, nil
			}
			return dst, appended, fmt.Errorf("wal: cursor read %s at offset %d: %w", c.name, c.off, derr)
		}
		if len(dst) >= maxBytes {
			return dst, appended, nil
		}
		if consumed == 0 && (rerr != nil || n == 0) {
			// End of this file's written data. If the target moved to a
			// newer file (rotation, or a fresh base after compaction),
			// transition; otherwise the missing bytes belong to an append
			// whose write has completed but whose data our read raced —
			// loop to re-read.
			name, _, err := c.w.resolveFile(c.next)
			if err != nil {
				return dst, appended, err
			}
			if name != c.name {
				c.closeFile()
				continue
			}
			if sameFile++; sameFile > 5 {
				// Nothing new after several passes despite lastSeq >= next:
				// hand back to the caller (it will wait on AppendSignal).
				return dst, appended, nil
			}
		}
	}
}

// consume decodes whole frames from buf, appending those at or above the
// cursor position to *dst, and returns how many bytes of buf were
// consumed (always a whole number of frames). A frame cut short by the
// end of buf is left unconsumed. Decode errors other than ErrShortFrame
// are returned for the caller to classify.
func (c *Cursor) consume(buf []byte, dst *[]byte, appended *int, maxBytes int) (int, error) {
	off := 0
	for off < len(buf) {
		rec, n, err := decodeRecord(buf[off:])
		if err != nil {
			if errors.Is(err, errShort) {
				return off, nil
			}
			return off, err
		}
		if rec.Seq >= c.next {
			if len(*dst) > 0 && len(*dst)+n > maxBytes {
				return off, nil
			}
			*dst = append(*dst, buf[off:off+n]...)
			*appended++
			c.next = rec.Seq + 1
		}
		off += n
	}
	return off, nil
}

// NextSeq returns the sequence the cursor will deliver next (one past
// the last delivered record).
func (c *Cursor) NextSeq() uint64 { return c.next }

// Close releases the cursor's file handle. The cursor must not be used
// afterwards.
func (c *Cursor) Close() error {
	c.closeFile()
	return nil
}
