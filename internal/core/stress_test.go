package core

import (
	"sync"
	"testing"
)

// TestConcurrentPredictDuringApply hammers the pooled-scratch online
// path (Predict, PredictDetailed, Recommend, PredictBatch) from many
// goroutines while a writer keeps publishing new model generations via
// sharded Apply. Run under -race this is the ownership proof for
// lmScratchPool/recScratchPool: scratch never leaks between goroutines
// or across model generations, and readers on an old generation stay
// self-consistent.
func TestConcurrentPredictDuringApply(t *testing.T) {
	mod, _ := trainSmall(t)
	sh := NewSharded(mod)

	var cur sync.Map // single key 0 -> *ShardedModel
	cur.Store(0, sh)
	load := func() *Model {
		v, _ := cur.Load(0)
		return v.(*ShardedModel).Model()
	}

	const readers = 8
	const rounds = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := load()
				u := (g*31 + i) % m.m.NumUsers()
				it := (g*17 + i) % m.m.NumItems()
				switch i % 4 {
				case 0:
					m.Predict(u, it)
				case 1:
					m.PredictDetailed(u, it)
				case 2:
					m.Recommend(u, 5)
				case 3:
					m.PredictBatch([]Pair{{u, it}, {u, (it + 1) % m.m.NumItems()}})
				}
				i++
			}
		}(g)
	}

	cursh := sh
	for r := 0; r < rounds; r++ {
		ups := make([]RatingUpdate, 0, 10)
		for j := 0; j < 10; j++ {
			ups = append(ups, RatingUpdate{
				User:  (r*10 + j) % mod.m.NumUsers(),
				Item:  (r*7 + j) % mod.m.NumItems(),
				Value: float64(j%5) + 1,
			})
		}
		next, err := cursh.Apply(ups)
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
		cursh = next
		cur.Store(0, cursh)
	}
	close(stop)
	wg.Wait()

	// The final generation still predicts deterministically after the
	// concurrent churn (pooled scratch left no residue).
	m := load()
	for u := 0; u < 5; u++ {
		a := m.PredictDetailed(u, u+3)
		b := m.PredictDetailed(u, u+3)
		if a != b {
			t.Fatalf("user %d: prediction not deterministic after stress: %+v vs %+v", u, a, b)
		}
	}
}
