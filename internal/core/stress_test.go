package core

import (
	"sync"
	"testing"
)

// TestConcurrentPredictDuringApply hammers the pooled-scratch online
// path (Predict, PredictDetailed, Recommend, PredictBatch) from many
// goroutines while a writer keeps publishing new model generations via
// sharded Apply. Run under -race this is the ownership proof for
// lmScratchPool/recScratchPool: scratch never leaks between goroutines
// or across model generations, and readers on an old generation stay
// self-consistent.
func TestConcurrentPredictDuringApply(t *testing.T) {
	mod, _ := trainSmall(t)
	sh := NewSharded(mod)

	var cur sync.Map // single key 0 -> *ShardedModel
	cur.Store(0, sh)
	load := func() *Model {
		v, _ := cur.Load(0)
		return v.(*ShardedModel).Model()
	}

	const readers = 8
	const rounds = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := load()
				u := (g*31 + i) % m.m.NumUsers()
				it := (g*17 + i) % m.m.NumItems()
				switch i % 4 {
				case 0:
					m.Predict(u, it)
				case 1:
					m.PredictDetailed(u, it)
				case 2:
					m.Recommend(u, 5)
				case 3:
					m.PredictBatch([]Pair{{u, it}, {u, (it + 1) % m.m.NumItems()}})
				}
				i++
			}
		}(g)
	}

	cursh := sh
	for r := 0; r < rounds; r++ {
		ups := make([]RatingUpdate, 0, 10)
		for j := 0; j < 10; j++ {
			ups = append(ups, RatingUpdate{
				User:  (r*10 + j) % mod.m.NumUsers(),
				Item:  (r*7 + j) % mod.m.NumItems(),
				Value: float64(j%5) + 1,
			})
		}
		next, err := cursh.Apply(ups)
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
		cursh = next
		cur.Store(0, cursh)
	}
	close(stop)
	wg.Wait()

	// The final generation still predicts deterministically after the
	// concurrent churn (pooled scratch left no residue).
	m := load()
	for u := 0; u < 5; u++ {
		a := m.PredictDetailed(u, u+3)
		b := m.PredictDetailed(u, u+3)
		if a != b {
			t.Fatalf("user %d: prediction not deterministic after stress: %+v vs %+v", u, a, b)
		}
	}
}

// TestConcurrentRecommendCacheDuringApply races warm cached Recommend
// reads — hits, lazy repairs, and the racing Store of concurrently
// repaired entries — against a writer publishing carried generations.
// Under -race this is the proof that entry publication is safe (entries
// are immutable; repair builds a replacement and racing repairs of the
// same entry produce identical values, so either Store may win), and
// every read is checked against the reference ranking computed on the
// reader's own pinned generation, so a stale or torn entry cannot hide.
func TestConcurrentRecommendCacheDuringApply(t *testing.T) {
	mod, _ := trainSmall(t)
	sh := NewSharded(mod)
	p := mod.Matrix().NumUsers()
	for u := 0; u < p; u++ {
		mod.Recommend(u, 8) // warm every entry so applies carry + queue repairs
	}

	var cur sync.Map
	cur.Store(0, sh)
	load := func() *Model {
		v, _ := cur.Load(0)
		return v.(*ShardedModel).Model()
	}

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mismatch sync.Once
	var failure string
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := load()
				u := (g*37 + i) % m.m.NumUsers()
				n := 1 + (g+i)%10
				got := m.Recommend(u, n)
				if i%40 == 0 {
					// Exact reference on the same pinned generation: the
					// cached read must be bit-identical however many
					// repairs and carries the entry has been through.
					if want := refRecommend(m, u, n); !equalRecs(got, want) {
						mismatch.Do(func() {
							failure = "cached read diverged from reference on a pinned generation"
						})
						return
					}
				}
			}
		}(g)
	}

	cursh := sh
	for r := 0; r < 8; r++ {
		ups := []RatingUpdate{
			{User: (r * 13) % p, Item: (r * 11) % mod.Matrix().NumItems(), Value: float64(r%5) + 1},
			{User: (r*13 + 5) % p, Item: (r*11 + 3) % mod.Matrix().NumItems(), Value: float64((r+2)%5) + 1},
		}
		next, err := cursh.Apply(ups)
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
		cursh = next
		cur.Store(0, cursh)
	}
	close(stop)
	wg.Wait()
	if failure != "" {
		t.Fatal(failure)
	}
}
