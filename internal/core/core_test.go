package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

func smallSynth() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 120
	cfg.Items = 150
	cfg.MinPerUser = 15
	cfg.MeanPerUser = 30
	cfg.Archetypes = 8
	return cfg
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.M = 20
	cfg.K = 10
	cfg.Clusters = 8
	return cfg
}

func trainSmall(t *testing.T) (*Model, *synth.Dataset) {
	t.Helper()
	d := synth.MustGenerate(smallSynth())
	mod, err := Train(d.Matrix, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return mod, d
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.K = -1 },
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.Lambda = -0.1 },
		func(c *Config) { c.Lambda = 1.1 },
		func(c *Config) { c.Delta = 2 },
		func(c *Config) { c.OriginalWeight = -0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestTrainRejectsEmptyMatrix(t *testing.T) {
	if _, err := Train(ratings.NewBuilder(0, 0).Build(), DefaultConfig()); err == nil {
		t.Error("empty matrix must error")
	}
}

func TestTrainStatsPopulated(t *testing.T) {
	mod, _ := trainSmall(t)
	st := mod.Stats()
	if st.GISNeighbors <= 0 {
		t.Error("GIS has no neighbours")
	}
	if st.ClusterIters < 1 {
		t.Error("clustering reported no iterations")
	}
	if st.TotalDuration <= 0 {
		t.Error("total duration not recorded")
	}
	if mod.GIS() == nil || mod.Clusters() == nil || mod.Smoother() == nil {
		t.Error("model accessors returned nil")
	}
	if mod.Config().M != 20 {
		t.Error("Config() does not round-trip")
	}
}

func TestPredictionsWithinScale(t *testing.T) {
	mod, d := trainSmall(t)
	m := d.Matrix
	rng := rand.New(rand.NewSource(3))
	for n := 0; n < 500; n++ {
		u, i := rng.Intn(m.NumUsers()), rng.Intn(m.NumItems())
		v := mod.Predict(u, i)
		if v < m.MinRating() || v > m.MaxRating() || math.IsNaN(v) {
			t.Fatalf("Predict(%d,%d) = %g outside [%g,%g]", u, i, v, m.MinRating(), m.MaxRating())
		}
	}
}

func TestPredictDetailedComponents(t *testing.T) {
	mod, d := trainSmall(t)
	found := false
	for u := 0; u < 20 && !found; u++ {
		for i := 0; i < 30; i++ {
			p := mod.PredictDetailed(u, i)
			if p.HasSIR && p.HasSUR && p.HasSUIR {
				found = true
				// The fused value must lie inside the clamped hull of the
				// components' fusion; verify Eq. 14 arithmetic directly.
				cfg := mod.Config()
				want := (1-cfg.Delta)*(1-cfg.Lambda)*p.SIR +
					(1-cfg.Delta)*cfg.Lambda*p.SUR +
					cfg.Delta*p.SUIR
				want = clamp(want, d.Matrix.MinRating(), d.Matrix.MaxRating())
				if math.Abs(want-p.Value) > 1e-9 {
					t.Fatalf("Eq14 fusion = %g, PredictDetailed = %g", want, p.Value)
				}
				if p.ItemsUsed > cfg.M || p.UsersUsed > cfg.K {
					t.Fatalf("local matrix %d×%d exceeds M×K %d×%d",
						p.ItemsUsed, p.UsersUsed, cfg.M, cfg.K)
				}
				break
			}
		}
	}
	if !found {
		t.Fatal("no prediction had all three components")
	}
}

func TestPredictOutOfRangeFallsBack(t *testing.T) {
	mod, d := trainSmall(t)
	m := d.Matrix
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {m.NumUsers(), 0}, {0, m.NumItems()}} {
		v := mod.Predict(pair[0], pair[1])
		if math.IsNaN(v) || v < m.MinRating() || v > m.MaxRating() {
			t.Errorf("out-of-range Predict(%d,%d) = %g", pair[0], pair[1], v)
		}
	}
}

func TestPredictBatchMatchesSerial(t *testing.T) {
	mod, d := trainSmall(t)
	rng := rand.New(rand.NewSource(9))
	pairs := make([]Pair, 200)
	for k := range pairs {
		pairs[k] = Pair{rng.Intn(d.Matrix.NumUsers()), rng.Intn(d.Matrix.NumItems())}
	}
	batch := mod.PredictBatch(pairs)
	for k, p := range pairs {
		if got := mod.Predict(p.User, p.Item); got != batch[k] {
			t.Fatalf("batch[%d] = %g, serial = %g", k, batch[k], got)
		}
	}
}

func TestPredictConcurrentSafe(t *testing.T) {
	mod, d := trainSmall(t)
	var wg sync.WaitGroup
	results := make([][]float64, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, 100)
			for k := range out {
				out[k] = mod.Predict(k%d.Matrix.NumUsers(), (k*7)%d.Matrix.NumItems())
			}
			results[g] = out
		}()
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for k := range results[g] {
			if results[g][k] != results[0][k] {
				t.Fatalf("goroutine %d diverged at %d: %g vs %g", g, k, results[g][k], results[0][k])
			}
		}
	}
}

func TestCacheDoesNotChangeResults(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	withCache, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableCache = true
	noCache, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 30; u++ {
		for i := 0; i < 10; i++ {
			a, b := withCache.Predict(u, i), noCache.Predict(u, i)
			if a != b {
				t.Fatalf("cache changed Predict(%d,%d): %g vs %g", u, i, a, b)
			}
		}
	}
}

func TestLambdaDeltaExtremes(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	// δ=1: prediction must equal clamped SUIR′ when available.
	cfg := smallConfig()
	cfg.Delta = 1
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := mod.PredictDetailed(0, 0)
	if p.HasSUIR {
		want := clamp(p.SUIR, d.Matrix.MinRating(), d.Matrix.MaxRating())
		if math.Abs(p.Value-want) > 1e-9 {
			t.Errorf("δ=1 prediction %g, want SUIR %g", p.Value, want)
		}
	}
	// λ=0, δ=0: prediction equals clamped SIR′.
	cfg = smallConfig()
	cfg.Lambda, cfg.Delta = 0, 0
	mod, err = Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p = mod.PredictDetailed(0, 0)
	if p.HasSIR {
		want := clamp(p.SIR, d.Matrix.MinRating(), d.Matrix.MaxRating())
		if math.Abs(p.Value-want) > 1e-9 {
			t.Errorf("λ=0,δ=0 prediction %g, want SIR %g", p.Value, want)
		}
	}
}

func TestRecommendExcludesRatedAndSorted(t *testing.T) {
	mod, d := trainSmall(t)
	u := 5
	recs := mod.Recommend(u, 15)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	rated := map[int]bool{}
	for _, e := range d.Matrix.UserRatings(u) {
		rated[int(e.Index)] = true
	}
	for k, r := range recs {
		if rated[r.Item] {
			t.Fatalf("recommended already-rated item %d", r.Item)
		}
		if k > 0 && recs[k-1].Score < r.Score {
			t.Fatalf("recommendations not sorted: %g before %g", recs[k-1].Score, r.Score)
		}
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	mod, _ := trainSmall(t)
	if recs := mod.Recommend(0, 0); recs != nil {
		t.Error("n=0 must return nil")
	}
	if recs := mod.Recommend(-1, 5); recs != nil {
		t.Error("invalid user must return nil")
	}
	if recs := mod.Recommend(0, 1000000); len(recs) > 150 {
		t.Error("n larger than catalogue must cap at item count")
	}
}

func TestFullUserSearchConsistent(t *testing.T) {
	// Full user search considers a superset of candidates, so its
	// selected neighbours must have similarity >= the iCluster-selected
	// ones (it can only find better candidates).
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	fast, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FullUserSearch = true
	full, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		fastN := fast.likeMindedUsers(u)
		fullN := full.likeMindedUsers(u)
		if len(fullN) < len(fastN) {
			t.Fatalf("user %d: full search found fewer neighbours (%d < %d)", u, len(fullN), len(fastN))
		}
		if len(fastN) > 0 && len(fullN) > 0 && fullN[0].sim+1e-12 < fastN[0].sim {
			t.Fatalf("user %d: full search best sim %g below iCluster %g", u, fullN[0].sim, fastN[0].sim)
		}
	}
}

func TestDisableSmoothingStillPredicts(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	cfg.DisableSmoothing = true
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		v := mod.Predict(u, u)
		if math.IsNaN(v) || v < 1 || v > 5 {
			t.Fatalf("no-smoothing Predict(%d,%d) = %g", u, u, v)
		}
	}
}

func TestEq10SimBounds(t *testing.T) {
	mod, d := trainSmall(t)
	rng := rand.New(rand.NewSource(17))
	for n := 0; n < 300; n++ {
		a, b := rng.Intn(d.Matrix.NumUsers()), rng.Intn(d.Matrix.NumUsers())
		if a == b {
			continue
		}
		s := mod.eq10Sim(a, b)
		if s < -1-1e-9 || s > 1+1e-9 || math.IsNaN(s) {
			t.Fatalf("eq10Sim(%d,%d) = %g out of [-1,1]", a, b, s)
		}
	}
}

func TestPairSim(t *testing.T) {
	// Eq. 13: sim_i·sim_u / sqrt(sim_i² + sim_u²).
	if got, want := pairSim(3, 4), 12.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("pairSim(3,4) = %g, want %g", got, want)
	}
	if pairSim(0, 0) != 0 {
		t.Error("pairSim(0,0) must be 0")
	}
	if pairSim(0.5, 0) != 0 {
		t.Error("pairSim with zero user sim must be 0")
	}
}

// Property: predictions are deterministic and within scale for random
// (user, item) pairs across retrains with the same seed.
func TestPredictDeterministicProperty(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	m1, err := Train(d.Matrix, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d.Matrix, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(uRaw, iRaw uint16) bool {
		u := int(uRaw) % d.Matrix.NumUsers()
		i := int(iRaw) % d.Matrix.NumItems()
		a, b := m1.Predict(u, i), m2.Predict(u, i)
		return a == b && a >= 1 && a <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSmoothingImprovesSparseAccuracy is the headline behavioural check:
// on a Given-N split, smoothing must reduce MAE versus no smoothing.
func TestSmoothingImprovesSparseAccuracy(t *testing.T) {
	d := synth.MustGenerate(synth.Config{
		Users: 200, Items: 300, Archetypes: 12, Genres: 12, Seed: 5,
		MinPerUser: 20, MeanPerUser: 35, AffinityGain: 2.0,
		ArchetypeSpread: 0.1, UserBiasStd: 0.55, UserScaleStd: 0.35,
		ItemBiasStd: 0.25, NoiseStd: 0.45, JunkProb: 0.03,
		PopularitySkew: 0.8, AffinitySelect: 1.0,
	})
	split, err := ratings.MLSplit(d.Matrix, 120, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	mae := func(cfg Config) float64 {
		mod, err := Train(split.Matrix, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, tg := range split.Targets {
			sum += math.Abs(mod.Predict(tg.User, tg.Item) - tg.Actual)
		}
		return sum / float64(len(split.Targets))
	}
	cfg := smallConfig()
	with := mae(cfg)
	cfg.DisableSmoothing = true
	without := mae(cfg)
	if with >= without {
		t.Errorf("smoothing did not help: MAE %.4f (with) vs %.4f (without)", with, without)
	}
}

func TestEvalOnMatchesTargets(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Train(split.Matrix, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	preds := mod.EvalOn(split.Targets)
	if len(preds) != len(split.Targets) {
		t.Fatalf("EvalOn returned %d predictions for %d targets", len(preds), len(split.Targets))
	}
	for k, tg := range split.Targets {
		if got := mod.Predict(tg.User, tg.Item); got != preds[k] {
			t.Fatalf("EvalOn[%d] = %g, Predict = %g", k, preds[k], got)
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
