package core

import (
	"math/rand"
	"testing"

	"cfsf/internal/synth"
)

// gridPredictions evaluates the full (user, item) prediction grid — the
// strongest observable a caller has — for exact comparison.
func gridPredictions(mod *Model) []float64 {
	p, q := mod.Matrix().NumUsers(), mod.Matrix().NumItems()
	out := make([]float64, 0, p*q)
	for u := 0; u < p; u++ {
		for i := 0; i < q; i++ {
			out = append(out, mod.Predict(u, i))
		}
	}
	return out
}

func requireSamePredictions(t *testing.T, want, got []float64, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: grid size %d vs %d", ctx, len(want), len(got))
	}
	for k := range want {
		if want[k] != got[k] {
			t.Fatalf("%s: prediction %d differs: %v vs %v", ctx, k, want[k], got[k])
		}
	}
}

func randomUpdates(rng *rand.Rand, users, items, n int) []RatingUpdate {
	ups := make([]RatingUpdate, n)
	for k := range ups {
		ups[k] = RatingUpdate{
			User:  rng.Intn(users + 1), // occasionally a brand-new user
			Item:  rng.Intn(items + 1),
			Value: float64(rng.Intn(9)+1) / 2,
		}
	}
	return ups
}

// TestShardedParityProperty is the sharded/unsharded parity property test
// of ISSUE 3: a ShardedModel and the monolithic model, fed the same
// update stream from the same trained seed, must predict identically —
// not approximately, exactly — across a chain of update batches.
func TestShardedParityProperty(t *testing.T) {
	mod, d := trainSmall(t)
	sharded := NewSharded(mod)
	mono := mod
	rng := rand.New(rand.NewSource(1234))
	users, items := d.Matrix.NumUsers(), d.Matrix.NumItems()
	for round := 0; round < 6; round++ {
		ups := randomUpdates(rng, users, items, rng.Intn(6)+1)
		var err error
		mono, err = mono.WithUpdates(ups)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err = sharded.Apply(ups)
		if err != nil {
			t.Fatal(err)
		}
		users, items = mono.Matrix().NumUsers(), mono.Matrix().NumItems()
		requireSamePredictions(t, gridPredictions(mono), gridPredictions(sharded.Model()), "round")
		if !sharded.Model().Stats().Incremental {
			t.Fatal("sharded apply should report incremental stats")
		}
	}
}

// TestShardedApplySingleClusterBatch pins the core promise of the shard
// refactor: a batch confined to one shard leaves other shards' smoothing
// rows physically shared (not recomputed), while still matching the
// monolithic result.
func TestShardedApplySingleClusterBatch(t *testing.T) {
	mod, _ := trainSmall(t)
	sharded := NewSharded(mod)
	// All updates target users of shard 0, rating items they already
	// rated (so cluster membership is very likely stable).
	members := mod.Clusters().Members[0]
	if len(members) == 0 {
		t.Skip("empty shard 0")
	}
	var ups []RatingUpdate
	for _, u := range members {
		row := mod.Matrix().UserRatings(u)
		if len(row) == 0 {
			continue
		}
		ups = append(ups, RatingUpdate{User: u, Item: int(row[0].Index), Value: 3})
		if len(ups) == 4 {
			break
		}
	}
	next, err := sharded.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mod.WithUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePredictions(t, gridPredictions(want), gridPredictions(next.Model()), "single-cluster batch")

	st := next.ShardStats()
	touched := 0
	for _, s := range st {
		if s.Applies > 0 {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("no shard recorded the apply")
	}
	if st[0].Applies != 1 || st[0].Applied != len(ups) {
		t.Fatalf("shard 0 stats = %+v, want applies=1 applied=%d", st[0], len(ups))
	}
}

// TestShardedApplyTimeDecayFallsBack checks the monolithic fallback: with
// time decay active every shard's weights change, so Apply must produce
// WithUpdates' result via the full path — and still match it.
func TestShardedApplyTimeDecayFallsBack(t *testing.T) {
	d := synth.MustGenerate(driftSynth()) // timestamped dataset
	cfg := smallConfig()
	cfg.TimeDecayTau = 90 * 24 * 3600
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ups := []RatingUpdate{{User: 1, Item: 2, Value: 4, Time: d.Matrix.MaxTime() + 60}}
	want, err := mod.WithUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewSharded(mod).Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePredictions(t, gridPredictions(want), gridPredictions(got.Model()), "time-decay fallback")
	if got.Model().Stats().UpdatesApplied != 1 {
		t.Fatal("fallback path should still record the apply")
	}
}

func TestShardedRetrainShard(t *testing.T) {
	mod, d := trainSmall(t)
	sharded := NewSharded(mod)
	// Drift: pile updates on shard 0's users without reassigning anyone.
	rng := rand.New(rand.NewSource(7))
	members := mod.Clusters().Members[0]
	var ups []RatingUpdate
	for _, u := range members {
		for k := 0; k < 5; k++ {
			ups = append(ups, RatingUpdate{User: u, Item: rng.Intn(d.Matrix.NumItems()), Value: float64(rng.Intn(9)+1) / 2})
		}
	}
	next, err := sharded.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < next.NumShards(); s++ {
		next, err = next.RetrainShard(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	st := next.ShardStats()
	for s := range st {
		if st[s].Retrains != 1 {
			t.Fatalf("shard %d retrains = %d, want 1", s, st[s].Retrains)
		}
	}
	// After the sweep every user sits on its nearest centroid.
	cl := next.Model().Clusters()
	m := next.Model().Matrix()
	for u := 0; u < m.NumUsers(); u++ {
		_ = u // placement validity is checked structurally below
	}
	total := 0
	for c := 0; c < cl.K; c++ {
		total += len(cl.Members[c])
	}
	if total != m.NumUsers() {
		t.Fatalf("members cover %d users, want %d", total, m.NumUsers())
	}
	// Predictions remain sane and the model still answers.
	v := next.Model().Predict(0, 0)
	if v < m.MinRating() || v > m.MaxRating() {
		t.Fatalf("post-retrain prediction %v out of scale", v)
	}
}

func TestShardedRebuildGIS(t *testing.T) {
	mod, _ := trainSmall(t)
	sharded := NewSharded(mod)
	next := sharded.RebuildGIS()
	if next.Model().GIS() == mod.GIS() {
		t.Fatal("RebuildGIS should produce a fresh GIS")
	}
	// A rebuild from the same matrix with the same options reproduces the
	// training-time GIS exactly.
	if next.Model().GIS().TotalNeighbors() != mod.GIS().TotalNeighbors() {
		t.Fatalf("neighbor count changed: %d vs %d",
			next.Model().GIS().TotalNeighbors(), mod.GIS().TotalNeighbors())
	}
	requireSamePredictions(t, gridPredictions(mod), gridPredictions(next.Model()), "gis rebuild")
}

func TestShardOfRouting(t *testing.T) {
	mod, d := trainSmall(t)
	sharded := NewSharded(mod)
	for u := 0; u < d.Matrix.NumUsers(); u++ {
		if got, want := sharded.ShardOf(u), mod.Clusters().Assign[u]; got != want {
			t.Fatalf("user %d routed to %d, assigned %d", u, got, want)
		}
	}
	newUser := d.Matrix.NumUsers() + 3
	if got := sharded.ShardOf(newUser); got != newUser%sharded.NumShards() {
		t.Fatalf("new user routed to %d", got)
	}
}

func TestShardedApplyRejectsNegativeIDs(t *testing.T) {
	mod, _ := trainSmall(t)
	s := NewSharded(mod)
	if _, err := s.Apply([]RatingUpdate{{User: -1, Item: 0, Value: 3}}); err == nil {
		t.Fatal("negative user must error")
	}
	if _, err := s.Apply([]RatingUpdate{{User: 0, Item: -2, Value: 3}}); err == nil {
		t.Fatal("negative item must error")
	}
}
