package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	mod, d := trainSmall(t)

	var buf bytes.Buffer
	if err := mod.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded model must predict identically.
	for u := 0; u < 30; u++ {
		for i := 0; i < 20; i++ {
			a, b := mod.Predict(u, i), loaded.Predict(u, i)
			if a != b {
				t.Fatalf("Predict(%d,%d): %g != %g after load", u, i, a, b)
			}
		}
	}
	lc, mc := loaded.Config(), mod.Config()
	if lc.M != mc.M || lc.K != mc.K || lc.Clusters != mc.Clusters ||
		lc.Lambda != mc.Lambda || lc.Delta != mc.Delta ||
		lc.OriginalWeight != mc.OriginalWeight {
		t.Error("config did not round-trip")
	}
	if loaded.Matrix().NumRatings() != d.Matrix.NumRatings() {
		t.Error("matrix did not round-trip")
	}
	if loaded.GIS().TotalNeighbors() != mod.GIS().TotalNeighbors() {
		t.Error("GIS did not round-trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	mod, _ := trainSmall(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := mod.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Predict(1, 2), mod.Predict(1, 2); got != want {
		t.Errorf("file round trip: %g != %g", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage input must error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must error")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadedModelSupportsUpdates(t *testing.T) {
	mod, _ := trainSmall(t)
	var buf bytes.Buffer
	if err := mod.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	next, err := loaded.WithUpdates([]RatingUpdate{{User: 0, Item: 5, Value: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := next.Matrix().Rating(0, 5); !ok || r != 4 {
		t.Errorf("update after load: %g,%v", r, ok)
	}
}
