package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cfsf/internal/mathx"
	"cfsf/internal/synth"
)

// Reference implementations of the online phase, kept deliberately on
// the pre-optimisation mechanics: fresh allocations everywhere, per-call
// copy+sort of the top-M neighbourhood, per-cell Fill via the explicit
// fallback chain, full sort in Recommend. The optimised production path
// (id-sorted mirror, fill memo, pooled scratch, heap top-n) must be
// bit-for-bit identical to these. The one intentional behaviour change
// of the PR — capping the like-minded candidate set at
// CandidateFactor×K even mid-cluster — is part of the specification
// here too (refGather).

// refFill is the original Eq. 7 fallback chain, bypassing the memo.
func refFill(mod *Model, u, i int) float64 {
	um := mod.m.UserMean(u)
	c := mod.sm.Cluster(u)
	if d, ok := mod.sm.Deviation(c, i); ok {
		return um + d
	}
	if g, ok := mod.sm.GlobalDeviation(i); ok {
		return um + g
	}
	return um
}

// refSortedTopM is the per-request copy+sort the mirror replaced.
func refSortedTopM(mod *Model, item int) []mathx.Scored {
	items := mod.topItems(item)
	sorted := make([]mathx.Scored, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Index < sorted[b].Index })
	return sorted
}

func refForEachLocalRating(mod *Model, u int, sorted []mathx.Scored, fn func(k int, r float64, original bool, w11 float64)) {
	row := mod.m.UserRatings(u)
	j := 0
	for k := range sorted {
		idx := sorted[k].Index
		for j < len(row) && row[j].Index < idx {
			j++
		}
		if j < len(row) && row[j].Index == idx {
			fn(k, row[j].Value, true, mod.cfg.OriginalWeight*mod.decayAt(u, j))
			continue
		}
		if mod.cfg.DisableSmoothing {
			continue
		}
		fn(k, refFill(mod, u, int(idx)), false, 1-mod.cfg.OriginalWeight)
	}
}

func refSIR(mod *Model, user int, sorted []mathx.Scored) (float64, bool) {
	var num, den float64
	refForEachLocalRating(mod, user, sorted, func(k int, r float64, orig bool, w11 float64) {
		w := w11 * sorted[k].Score
		num += w * r
		den += w
	})
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

func refRatingWithW(mod *Model, u, i int) (val, w11 float64, ok bool) {
	row := mod.m.UserRatings(u)
	lo := sort.Search(len(row), func(x int) bool { return int(row[x].Index) >= i })
	if lo < len(row) && int(row[lo].Index) == i {
		return row[lo].Value, mod.cfg.OriginalWeight * mod.decayAt(u, lo), true
	}
	if mod.cfg.DisableSmoothing {
		return 0, 0, false
	}
	return refFill(mod, u, i), 1 - mod.cfg.OriginalWeight, true
}

func refSUR(mod *Model, user, item int, users []likeMinded) (float64, bool) {
	var num, den float64
	for _, lm := range users {
		t := int(lm.user)
		r, w11, ok := refRatingWithW(mod, t, item)
		if !ok {
			continue
		}
		w := w11 * lm.sim
		num += w * (r - mod.m.UserMean(t))
		den += w
	}
	if den <= 0 {
		return 0, false
	}
	return mod.m.UserMean(user) + num/den, true
}

func refSUIR(mod *Model, sorted []mathx.Scored, users []likeMinded) (float64, bool) {
	var num, den float64
	for _, lm := range users {
		sim := lm.sim
		refForEachLocalRating(mod, int(lm.user), sorted, func(k int, r float64, orig bool, w11 float64) {
			ps := pairSim(sorted[k].Score, sim)
			if ps <= 0 {
				return
			}
			w := w11 * ps
			num += w * r
			den += w
		})
	}
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

func refEq10Sim(mod *Model, active, cand int) float64 {
	am := mod.m.UserMean(active)
	cm := mod.m.UserMean(cand)
	rowC := mod.m.UserRatings(cand)
	j := 0
	var num, denA, denC float64
	for _, e := range mod.m.UserRatings(active) {
		for j < len(rowC) && rowC[j].Index < e.Index {
			j++
		}
		var rc, w float64
		if j < len(rowC) && rowC[j].Index == e.Index {
			rc = rowC[j].Value
			w = mod.cfg.OriginalWeight * mod.decayAt(cand, j)
		} else if mod.cfg.DisableSmoothing {
			continue
		} else {
			rc = refFill(mod, cand, int(e.Index))
			w = 1 - mod.cfg.OriginalWeight
		}
		dc := rc - cm
		da := e.Value - am
		num += w * dc * da
		denC += w * w * dc * dc
		denA += da * da
	}
	if denA == 0 || denC == 0 {
		return 0
	}
	return num / (math.Sqrt(denC) * math.Sqrt(denA))
}

func refGather(mod *Model, user int) []int {
	var candidates []int
	if mod.cfg.FullUserSearch {
		for u := 0; u < mod.m.NumUsers(); u++ {
			if u != user {
				candidates = append(candidates, u)
			}
		}
		return candidates
	}
	factor := mod.cfg.CandidateFactor
	if factor <= 0 {
		factor = 4
	}
	want := factor * mod.cfg.K
	for _, c := range mod.ic.Order[user] {
		for _, u := range mod.clusters.Members[c] {
			if u != user {
				candidates = append(candidates, u)
				if len(candidates) == want {
					return candidates
				}
			}
		}
	}
	return candidates
}

func refSelectLikeMinded(mod *Model, user int) []likeMinded {
	top := mathx.NewTopK(mod.cfg.K)
	for _, cand := range refGather(mod, user) {
		if s := refEq10Sim(mod, user, cand); s > 0 {
			top.Push(int32(cand), s)
		}
	}
	scored := top.Sorted()
	out := make([]likeMinded, len(scored))
	for i, s := range scored {
		out[i] = likeMinded{user: s.Index, sim: s.Score}
	}
	return out
}

func refPredictDetailed(mod *Model, user, item int) Prediction {
	var p Prediction
	if user < 0 || user >= mod.m.NumUsers() || item < 0 || item >= mod.m.NumItems() {
		p.Value = mod.fallback(user, item)
		return p
	}
	sorted := refSortedTopM(mod, item)
	users := refSelectLikeMinded(mod, user)
	p.ItemsUsed = len(sorted)
	p.UsersUsed = len(users)
	p.SIR, p.HasSIR = refSIR(mod, user, sorted)
	p.SUR, p.HasSUR = refSUR(mod, user, item, users)
	p.SUIR, p.HasSUIR = refSUIR(mod, sorted, users)
	wSIR := (1 - mod.cfg.Delta) * (1 - mod.cfg.Lambda)
	wSUR := (1 - mod.cfg.Delta) * mod.cfg.Lambda
	wSUIR := mod.cfg.Delta
	var num, den float64
	if p.HasSIR {
		num += wSIR * p.SIR
		den += wSIR
	}
	if p.HasSUR {
		num += wSUR * p.SUR
		den += wSUR
	}
	if p.HasSUIR {
		num += wSUIR * p.SUIR
		den += wSUIR
	}
	if den == 0 {
		p.Value = mod.fallback(user, item)
		return p
	}
	p.Value = mathx.Clamp(num/den, mod.m.MinRating(), mod.m.MaxRating())
	return p
}

// refRecommend is the pre-PR Recommend: rated-set map, -Inf sentinels,
// full sort, truncate, stop at the first -Inf.
func refRecommend(mod *Model, user, n int) []Recommendation {
	if n <= 0 || user < 0 || user >= mod.m.NumUsers() {
		return nil
	}
	rated := make(map[int]bool, len(mod.m.UserRatings(user)))
	for _, e := range mod.m.UserRatings(user) {
		rated[int(e.Index)] = true
	}
	type cand struct {
		item  int
		score float64
	}
	q := mod.m.NumItems()
	cands := make([]cand, q)
	for i := 0; i < q; i++ {
		if rated[i] || len(mod.m.ItemRatings(i)) == 0 {
			cands[i] = cand{i, math.Inf(-1)}
			continue
		}
		cands[i] = cand{i, refPredictDetailed(mod, user, i).Value}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].item < cands[b].item
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]Recommendation, 0, n)
	for _, c := range cands[:n] {
		if math.IsInf(c.score, -1) {
			break
		}
		out = append(out, Recommendation{Item: c.item, Score: c.score})
	}
	return out
}

func parityModels(t *testing.T) map[string]*Model {
	t.Helper()
	d := synth.MustGenerate(smallSynth())
	mods := map[string]*Model{}
	for name, mutate := range map[string]func(*Config){
		"default":          func(*Config) {},
		"disableSmoothing": func(c *Config) { c.DisableSmoothing = true },
		"disableCache":     func(c *Config) { c.DisableCache = true },
		"fullUserSearch":   func(c *Config) { c.FullUserSearch = true },
	} {
		cfg := smallConfig()
		mutate(&cfg)
		mod, err := Train(d.Matrix, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mods[name] = mod
	}
	return mods
}

// TestPredictParityWithReference is the bit-for-bit property test: on
// every config variant, PredictDetailed (mirror + memo + pooled scratch)
// must equal the reference path exactly — every component, every flag,
// every fused value.
func TestPredictParityWithReference(t *testing.T) {
	for name, mod := range parityModels(t) {
		mod := mod
		t.Run(name, func(t *testing.T) {
			p, q := mod.m.NumUsers(), mod.m.NumItems()
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				u := rng.Intn(p+4) - 2 // includes out-of-range users/items
				i := rng.Intn(q+4) - 2
				got := mod.PredictDetailed(u, i)
				want := refPredictDetailed(mod, u, i)
				if got != want {
					t.Logf("user %d item %d: got %+v want %+v", u, i, got, want)
					return false
				}
				return got.Value == mod.Predict(u, i)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestRecommendParityWithReference pins Recommend's heap selection +
// sorted-row merge to the full-sort reference, bit for bit, across n
// values including n > NumItems.
func TestRecommendParityWithReference(t *testing.T) {
	for name, mod := range parityModels(t) {
		mod := mod
		t.Run(name, func(t *testing.T) {
			q := mod.m.NumItems()
			for _, n := range []int{1, 3, 10, q / 2, q, q + 25} {
				for _, user := range []int{0, 7, mod.m.NumUsers() - 1} {
					got := mod.Recommend(user, n)
					want := refRecommend(mod, user, n)
					if len(got) != len(want) {
						t.Fatalf("user %d n %d: len %d want %d", user, n, len(got), len(want))
					}
					for k := range want {
						if got[k] != want[k] {
							t.Fatalf("user %d n %d rank %d: got %+v want %+v", user, n, k, got[k], want[k])
						}
					}
				}
			}
		})
	}
}

// TestRecommendSkipsUnsupportedAndRated verifies the skip-before-predict
// fix semantics: items without any rater and items the user already
// rated never appear, even when n asks for the whole catalogue.
func TestRecommendSkipsUnsupportedAndRated(t *testing.T) {
	mod, _ := trainSmall(t)
	q := mod.m.NumItems()
	empty := map[int]bool{}
	for i := 0; i < q; i++ {
		if len(mod.m.ItemRatings(i)) == 0 {
			empty[i] = true
		}
	}
	user := 3
	rated := map[int]bool{}
	for _, e := range mod.m.UserRatings(user) {
		rated[int(e.Index)] = true
	}
	recs := mod.Recommend(user, q)
	if len(recs) != q-len(rated)-len(empty) {
		t.Errorf("got %d recommendations, want %d (q=%d rated=%d empty=%d)",
			len(recs), q-len(rated)-len(empty), q, len(rated), len(empty))
	}
	for _, r := range recs {
		if rated[r.Item] {
			t.Errorf("rated item %d recommended", r.Item)
		}
		if empty[r.Item] {
			t.Errorf("unsupported item %d recommended", r.Item)
		}
	}
}

// TestGatherCandidatesCapped pins the satellite fix: the candidate set
// never exceeds CandidateFactor×K, even when a single cluster holds
// more users than the cap.
func TestGatherCandidatesCapped(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	cfg.Clusters = 2 // two huge clusters: the first visited exceeds the cap
	cfg.CandidateFactor = 2
	cfg.K = 5
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.CandidateFactor * cfg.K
	for u := 0; u < mod.m.NumUsers(); u += 7 {
		got := mod.gatherCandidates(u, nil)
		if len(got) > want {
			t.Fatalf("user %d: %d candidates, cap is %d", u, len(got), want)
		}
		if len(got) != want {
			t.Fatalf("user %d: %d candidates, expected exactly %d with oversized clusters", u, len(got), want)
		}
	}
}

// TestTopMMirrorMatchesGIS checks the precomputed-neighbourhood
// invariant directly: topM[i] is exactly topItems(i) re-sorted by id,
// and stays correct across an incremental update (mirror regenerated or
// shared only when the GIS prefix is unchanged).
func TestTopMMirrorMatchesGIS(t *testing.T) {
	mod, _ := trainSmall(t)
	check := func(m *Model) {
		t.Helper()
		for i := 0; i < m.m.NumItems(); i++ {
			want := refSortedTopM(m, i)
			got := m.topM[i]
			if len(got) != len(want) {
				t.Fatalf("item %d: mirror len %d want %d", i, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("item %d pos %d: mirror %+v want %+v", i, k, got[k], want[k])
				}
			}
		}
	}
	check(mod)
	next, err := mod.WithUpdates([]RatingUpdate{
		{User: 0, Item: 3, Value: 5},
		{User: 11, Item: 40, Value: 1},
		{User: mod.m.NumUsers(), Item: 2, Value: 4}, // new user
	})
	if err != nil {
		t.Fatal(err)
	}
	check(next)
}
