package core

import (
	"testing"

	"cfsf/internal/synth"
)

// benchPredictModel trains a mid-size model once per benchmark binary;
// the online-phase benches below share it.
var benchPredictModel *Model

func benchOnlineModel(b *testing.B) *Model {
	b.Helper()
	if benchPredictModel == nil {
		cfg := synth.DefaultConfig()
		cfg.Users = 400
		cfg.Items = 500
		cfg.MinPerUser = 15
		cfg.MeanPerUser = 40
		cfg.Archetypes = 10
		d, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mcfg := DefaultConfig()
		mod, err := Train(d.Matrix, mcfg)
		if err != nil {
			b.Fatal(err)
		}
		benchPredictModel = mod
	}
	return benchPredictModel
}

// BenchmarkPredict is the steady-state online path: the active user's
// like-minded neighbourhood is already cached, so each iteration is one
// local-matrix fusion (Eq. 12-14) over the precomputed top-M
// neighbourhood. CI gates on allocs/op == 0 here (cmd/benchjson
// -require-zero-allocs).
func BenchmarkPredict(b *testing.B) {
	mod := benchOnlineModel(b)
	q := mod.Matrix().NumItems()
	mod.Predict(0, 0) // warm user 0's neighbour cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Predict(0, i%q)
	}
}

// BenchmarkPredictColdCache pays the Eq. 10 like-minded selection on
// every call (DisableCache ablation): the per-request scratch path.
func BenchmarkPredictColdCache(b *testing.B) {
	mod := benchOnlineModel(b)
	cfg := mod.Config()
	cfg.DisableCache = true
	cold, err := Train(mod.Matrix(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, q := mod.Matrix().NumUsers(), mod.Matrix().NumItems()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold.Predict(i%p, (i*7)%q)
	}
}

// BenchmarkRecommend cycles through every user with all per-user cache
// entries pre-warmed: the cached read through the value-returning API
// (which pays one result allocation per call, unlike RecommendAppend).
func BenchmarkRecommend(b *testing.B) {
	mod := benchOnlineModel(b)
	p := mod.Matrix().NumUsers()
	for u := 0; u < p; u++ {
		mod.Recommend(u, 10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Recommend(i%p, 10)
	}
}

// BenchmarkRecommendWarm is the steady-state serving path the CI gate
// holds Recommend to: a warm per-user cache entry read through
// caller-owned storage (RecommendAppend with a reused dst). Must be
// allocation-free and within the ns/op ceiling wired in ci.yml.
func BenchmarkRecommendWarm(b *testing.B) {
	mod := benchOnlineModel(b)
	p := mod.Matrix().NumUsers()
	for u := 0; u < p; u++ {
		mod.Recommend(u, 10)
	}
	dst := make([]Recommendation, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = mod.RecommendAppend(dst[:0], i%p, 10)
	}
}

// BenchmarkRecommendCold is the exact scan the cache replaces: every
// iteration prices the full catalogue on a cache-disabled model — the
// pre-cache cost of Recommend, kept as the denominator for
// BENCH_recommend.json.
func BenchmarkRecommendCold(b *testing.B) {
	mod := benchOnlineModel(b)
	cfg := mod.Config()
	cfg.RecommendCacheSize = -1
	cold, err := Train(mod.Matrix(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := cold.Matrix().NumUsers()
	cold.Recommend(0, 10) // warm the neighbour cache, not the (disabled) rec cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold.Recommend(i%p, 10)
	}
}
