package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"time"

	"cfsf/internal/atomicfile"
	"cfsf/internal/cluster"
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
)

// modelWire is the on-disk form of a trained model. It stores the
// expensive offline artefacts (matrix, GIS, clustering) and rebuilds the
// cheap ones (smoothing tables, iCluster rankings) at load time, which
// keeps snapshots small and forward-compatible.
//
//cfsf:wire modelWireVersion
type modelWire struct {
	Version  int
	Config   Config
	Matrix   *ratings.Matrix
	GIS      similarity.Snapshot
	Clusters *cluster.Result
}

const modelWireVersion = 1

// Save serialises the model to w in gob format. The snapshot contains
// the training matrix, the GIS and the clustering; Load rebuilds the
// rest of the offline state.
func (mod *Model) Save(w io.Writer) error {
	wire := modelWire{
		Version:  modelWireVersion,
		Config:   mod.cfg,
		Matrix:   mod.m,
		GIS:      mod.gis.Snapshot(),
		Clusters: mod.clusters,
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("cfsf: save model: %w", err)
	}
	return nil
}

// SaveFile saves the model to path atomically and durably (temp file,
// fsync, rename, directory fsync), so a crash mid-save never leaves a
// torn model file behind.
func (mod *Model) SaveFile(path string) error {
	return atomicfile.WriteToAndSync(path, 0o644, func(f *os.File) error {
		return mod.Save(f)
	})
}

// Load reconstructs a model saved with Save. Smoothing tables, iCluster
// rankings and the neighbour cache are rebuilt, so the loaded model
// predicts identically to the one that was saved.
//
//cfsf:wallclock-ok rebuild duration recorded in TrainStats only; no clock value reaches predictions or replayed state
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("cfsf: load model: %w", err)
	}
	if wire.Version != modelWireVersion {
		return nil, fmt.Errorf("cfsf: unsupported model snapshot version %d", wire.Version)
	}
	if err := wire.Config.Validate(); err != nil {
		return nil, fmt.Errorf("cfsf: corrupt model snapshot: %w", err)
	}
	if wire.Matrix == nil || wire.Clusters == nil {
		return nil, fmt.Errorf("cfsf: corrupt model snapshot: missing matrix or clustering")
	}

	start := time.Now()
	mod := rebuildModel(wire.Config, wire.Matrix, wire.GIS, wire.Clusters)
	stampRebuildDuration(mod, start)
	return mod, nil
}

// LoadFile loads a model saved with SaveFile.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
