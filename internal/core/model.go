// Package core implements CFSF itself (paper §IV): the offline phase —
// Global Item Similarity matrix, K-means user clustering, cluster
// smoothing, iCluster rankings — and the online phase — local M×K matrix
// construction and SIR′/SUR′/SUIR′ fusion (Eq. 10–14).
//
// A trained Model is immutable and safe for concurrent prediction. The
// per-user like-minded-neighbour selection is cached ("caching
// intermediate results", paper §V-D) because Eq. 10 depends only on the
// active user, not on the active item.
package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"cfsf/internal/cluster"
	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
	"cfsf/internal/smoothing"
)

// Config holds every CFSF parameter. Defaults (paper §V-C1): C=30,
// λ=0.8, δ=0.1, K=25, M=95; the paper’s w=0.35 maps to OriginalWeight ε
// = 1−w (see that field’s comment and DESIGN.md).
type Config struct {
	// M is the number of similar items taken from the GIS (paper M=95).
	M int
	// K is the number of like-minded users selected by Eq. 10 (paper K=25).
	K int
	// Clusters is C, the K-means user-cluster count (paper C=30).
	Clusters int
	// Lambda balances SUR′ against SIR′ in Eq. 14 (paper λ=0.8).
	Lambda float64
	// Delta is the SUIR′ share in Eq. 14 (paper δ=0.1).
	Delta float64
	// OriginalWeight is ε in Eq. 11: the weight of an original rating; a
	// smoothed rating gets 1−ε. The paper's tuned "w ∈ [0.2, 0.4]" is
	// read as the smoothed-rating weight (see DESIGN.md: with originals
	// down-weighted 0.35 vs 0.65 the method is strictly worse on every
	// dataset we generated, and the cluster-smoothing literature the
	// paper builds on — Xue et al. '05 — likewise trusts original data
	// more). The default ε = 0.8 puts the smoothed weight at 0.2, on
	// the paper's optimal band.
	OriginalWeight float64
	// CandidateFactor bounds the like-minded candidate set to
	// CandidateFactor×K users drawn in iCluster order (§IV-E2). <=0
	// means 4.
	CandidateFactor int
	// GIS configures the offline item-similarity build. TopN is raised
	// to at least M automatically.
	GIS similarity.GISOptions
	// ItemFeatures, when non-nil together with ContentBlend > 0, blends
	// item-attribute cosine similarity into the GIS (paper §VI future
	// work: "attributes of items"). ItemFeatures[i] is item i's
	// attribute vector, e.g. a genre one-hot.
	ItemFeatures [][]float64
	// ContentBlend is the share of content similarity in the blended
	// GIS (0 = pure collaborative, 1 = pure content).
	ContentBlend float64
	// TimeDecayTau, when > 0 on a matrix that carries timestamps,
	// multiplies every original rating's Eq. 11 weight by
	// exp(−(now−t)/τ) with now = the newest timestamp (paper §VI future
	// work: "dates associated with the ratings ... may reflect shifts of
	// user preferences"). τ is in the timestamps' unit (seconds for unix
	// times). Smoothed values, being aggregates, keep weight 1−ε.
	TimeDecayTau float64
	// ClusterMaxIter caps K-means iterations (0 = 100).
	ClusterMaxIter int
	// ClusterMetric selects the K-means distance (default PCC).
	ClusterMetric cluster.Metric
	// Seed drives K-means++ initialisation.
	Seed int64
	// Workers bounds offline/batch parallelism (<=0 = GOMAXPROCS).
	Workers int
	// DisableSmoothing turns Eq. 7 off (ablation): missing ratings stay
	// missing and only observed ratings enter Eq. 10/12.
	DisableSmoothing bool
	// DisableCache turns the per-user neighbour cache off (ablation).
	DisableCache bool
	// FullUserSearch ignores iCluster pre-selection and scores every
	// user as a like-minded candidate (ablation: §IV-E2 without the
	// cluster shortcut).
	FullUserSearch bool
	// RecommendCacheSize caps each user's cached recommendation ranking
	// (see internal/core/reccache.go and DESIGN.md §10). 0 selects the
	// default (128, comfortably above the HTTP layer's n ≤ 100 ceiling);
	// negative disables the cache (ablation / memory-constrained
	// deployments). The cache never changes Recommend's output — only
	// whether the exact scan runs.
	RecommendCacheSize int
}

// DefaultConfig returns the paper's parameter setting for MovieLens.
func DefaultConfig() Config {
	return Config{
		M:               95,
		K:               25,
		Clusters:        30,
		Lambda:          0.8,
		Delta:           0.1,
		OriginalWeight:  0.8,
		CandidateFactor: 4,
		GIS:             similarity.DefaultGISOptions(),
	}
}

// Validate reports the first invalid field of the configuration.
func (c Config) Validate() error {
	switch {
	case c.M <= 0:
		return fmt.Errorf("cfsf: M must be positive, got %d", c.M)
	case c.K <= 0:
		return fmt.Errorf("cfsf: K must be positive, got %d", c.K)
	case c.Clusters <= 0:
		return fmt.Errorf("cfsf: Clusters must be positive, got %d", c.Clusters)
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("cfsf: Lambda must be in [0,1], got %g", c.Lambda)
	case c.Delta < 0 || c.Delta > 1:
		return fmt.Errorf("cfsf: Delta must be in [0,1], got %g", c.Delta)
	case c.OriginalWeight < 0 || c.OriginalWeight > 1:
		return fmt.Errorf("cfsf: OriginalWeight must be in [0,1], got %g", c.OriginalWeight)
	}
	return nil
}

// TrainStats reports what the offline phase built and how long each step
// took. For a model produced by WithUpdates the durations measure the
// incremental refresh, Incremental is true, and UpdatesApplied counts
// the ratings folded in — so a serving layer can surface how much
// cheaper each refresh was than the full train.
type TrainStats struct {
	GISDuration      time.Duration
	ClusterDuration  time.Duration
	SmoothDuration   time.Duration
	IClusterDuration time.Duration
	TotalDuration    time.Duration
	GISNeighbors     int // stored (item, neighbour) pairs
	ClusterIters     int
	ClusterInertia   float64
	// Incremental is true when the stats describe a WithUpdates refresh
	// rather than a full Train.
	Incremental bool
	// UpdatesApplied is the number of RatingUpdates folded in by the
	// refresh (0 for a full Train).
	UpdatesApplied int
}

// Model is a trained CFSF model. A published Model is never mutated:
// Train, Load, WithUpdates, and the shard paths each build a fresh value
// and hand it over complete, which is what lets readers use it without
// locks. The //cfsf:immutable contracts below are enforced by lockcheck;
// the //cfsf:cow mirrors (whose builders write them inside parallel.For
// closures, before publication) by cowcheck.
type Model struct {
	cfg      Config              //cfsf:immutable
	m        *ratings.Matrix     //cfsf:immutable
	gis      *similarity.GIS     //cfsf:immutable
	clusters *cluster.Result     //cfsf:immutable
	sm       *smoothing.Smoother //cfsf:immutable
	ic       *smoothing.ICluster //cfsf:immutable
	stats    TrainStats          //cfsf:immutable

	// neighborCache[u] holds the Eq. 10 top-K selection for user u. The
	// slice header is fixed at construction; elements are atomic
	// pointers, so the lazy fill on the read path stays race-free.
	neighborCache []atomic.Pointer[[]likeMinded] //cfsf:cow slice header swapped whole at publication; elements are atomic slots

	// recCache[u] holds user u's cached top-C recommendation ranking
	// (reccache.go). Same publication discipline as neighborCache: the
	// slice header is fixed at construction, elements are atomic
	// pointers filled on the read path and carried copy-on-write across
	// Apply generations. nil when the cache is disabled.
	recCache []atomic.Pointer[recEntry] //cfsf:cow slice header swapped whole at publication; elements are atomic slots

	// topM[i] is the id-sorted mirror of item i's top-M GIS prefix: the
	// same entries topItems(i) returns, re-sorted by ascending item id so
	// the online phase merges them against rating rows without a
	// per-request copy+sort. Invariant: regenerated whenever the
	// score-sorted list (and hence its truncation) changes — buildTopM
	// re-derives every mirror row and only shares a previous model's row
	// when the underlying GIS prefix is provably identical.
	topM [][]mathx.Scored //cfsf:cow rows shared across generations; never written after the model pointer is published

	// topM2[i][k] is topM[i][k].Score², precomputed so the Eq. 13 pair
	// weight in suirLocal feeds its sqrt without re-squaring the item
	// similarity K times per request. Built and shared in lockstep with
	// topM (same float64 multiply, so values are bit-identical to
	// squaring at request time).
	topM2 [][]float64 //cfsf:cow built and shared in lockstep with topM

	// decay[u] aligns a recency multiplier with every entry of the
	// user's row; nil when time decay is off or the matrix carries no
	// timestamps.
	decay [][]float64 //cfsf:cow rows shared across generations like topM
}

// likeMinded is one selected neighbour of an active user.
type likeMinded struct {
	user int32
	sim  float64
}

// Train runs the offline phase of CFSF on m.
//
//cfsf:wallclock-ok phase durations recorded in TrainStats only; no clock value reaches predictions or replayed state
func Train(m *ratings.Matrix, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m.NumUsers() == 0 || m.NumItems() == 0 {
		return nil, fmt.Errorf("cfsf: empty matrix (%d users, %d items)", m.NumUsers(), m.NumItems())
	}
	gisOpts := cfg.GIS
	if gisOpts.TopN > 0 && gisOpts.TopN < cfg.M {
		gisOpts.TopN = cfg.M
	}
	gisOpts.Workers = cfg.Workers

	start := time.Now()
	mod := &Model{cfg: cfg, m: m}

	t := time.Now()
	if cfg.ContentBlend > 0 && len(cfg.ItemFeatures) > 0 {
		mod.gis = similarity.BuildGISWithContent(m, cfg.ItemFeatures, cfg.ContentBlend, gisOpts)
	} else {
		mod.gis = similarity.BuildGIS(m, gisOpts)
	}
	mod.stats.GISDuration = time.Since(t)
	mod.stats.GISNeighbors = mod.gis.TotalNeighbors()

	t = time.Now()
	cl, err := cluster.Run(m, cluster.Options{
		K:       cfg.Clusters,
		MaxIter: cfg.ClusterMaxIter,
		Seed:    cfg.Seed,
		Metric:  cfg.ClusterMetric,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	mod.clusters = cl
	mod.stats.ClusterDuration = time.Since(t)
	mod.stats.ClusterIters = cl.Iterations
	mod.stats.ClusterInertia = cl.Inertia

	mod.buildDecay()

	t = time.Now()
	mod.sm = smoothing.NewWeighted(m, cl, mod.decay)
	mod.stats.SmoothDuration = time.Since(t)

	t = time.Now()
	mod.ic = smoothing.BuildICluster(mod.sm, cfg.Workers)
	mod.stats.IClusterDuration = time.Since(t)

	mod.neighborCache = make([]atomic.Pointer[[]likeMinded], m.NumUsers())
	mod.initRecCache()
	mod.buildTopM(nil)
	mod.stats.TotalDuration = time.Since(start)
	return mod, nil
}

// buildTopM materialises the id-sorted top-M mirror of every item's GIS
// neighbourhood. When prev is non-nil and an item's top-M prefix shares
// its backing array with prev's (the GIS refresh leaves untouched lists
// aliased), the previous mirror row is reused instead of re-sorted —
// the mirror-model of the copy-on-write sharing in the GIS itself.
//
//cfsf:init-only called by Train, Load, WithUpdates and the shard paths on a model that has not been published yet
func (mod *Model) buildTopM(prev *Model) {
	q := mod.gis.NumItems()
	mod.topM = make([][]mathx.Scored, q)
	mod.topM2 = make([][]float64, q)
	parallel.For(q, mod.cfg.Workers, func(i int) {
		if prev != nil && prev.cfg.M == mod.cfg.M && i < prev.gis.NumItems() &&
			samePrefix(prev.gis.Neighbors(i), mod.gis.Neighbors(i), mod.cfg.M) {
			mod.topM[i] = prev.topM[i]
			mod.topM2[i] = prev.topM2[i]
			return
		}
		row := mod.gis.TopNByID(i, mod.cfg.M)
		sq := make([]float64, len(row))
		for k, e := range row {
			sq[k] = e.Score * e.Score
		}
		mod.topM[i] = row
		mod.topM2[i] = sq
	})
}

// samePrefix reports whether the length-min(len, m) prefixes of a and b
// are the same array region. Neighbour lists are immutable, so aliased
// prefixes of equal length are guaranteed bit-identical.
func samePrefix(a, b []mathx.Scored, m int) bool {
	if len(a) > m {
		a = a[:m]
	}
	if len(b) > m {
		b = b[:m]
	}
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// buildDecay precomputes the per-rating recency multipliers.
//
//cfsf:init-only called by Train and Load on a model that has not been returned yet
func (mod *Model) buildDecay() {
	if mod.cfg.TimeDecayTau <= 0 || !mod.m.HasTimes() {
		mod.decay = nil
		return
	}
	now := mod.m.MaxTime()
	tau := mod.cfg.TimeDecayTau
	mod.decay = make([][]float64, mod.m.NumUsers())
	for u := range mod.decay {
		times := mod.m.UserRatingTimes(u)
		row := make([]float64, len(times))
		for k, t := range times {
			row[k] = math.Exp(-float64(now-t) / tau)
		}
		mod.decay[u] = row
	}
}

// decayAt returns the recency multiplier of the original rating at row
// index k of user u (1 when decay is off).
func (mod *Model) decayAt(u, k int) float64 {
	if mod.decay == nil {
		return 1
	}
	return mod.decay[u][k]
}

// Config returns the configuration the model was trained with.
func (mod *Model) Config() Config { return mod.cfg }

// Stats returns offline-phase statistics.
func (mod *Model) Stats() TrainStats { return mod.stats }

// Matrix returns the training matrix.
func (mod *Model) Matrix() *ratings.Matrix { return mod.m }

// GIS exposes the global item similarity matrix (read-only).
func (mod *Model) GIS() *similarity.GIS { return mod.gis }

// Clusters exposes the user clustering (read-only).
func (mod *Model) Clusters() *cluster.Result { return mod.clusters }

// Smoother exposes the Eq. 7 smoother (read-only).
func (mod *Model) Smoother() *smoothing.Smoother { return mod.sm }

// ratingAt returns the (possibly smoothed) rating of (u, i), whether it
// is an original rating, and whether it is usable at all. With smoothing
// disabled only observed ratings are usable.
func (mod *Model) ratingAt(u, i int) (val float64, original, ok bool) {
	if mod.cfg.DisableSmoothing {
		r, found := mod.m.Rating(u, i)
		return r, true, found
	}
	v, orig := mod.sm.Rating(u, i)
	return v, orig, true
}

// ratingWithW returns the (possibly smoothed) rating of (u, i) together
// with its Eq. 11 weight — ε times the recency decay for an original
// rating, 1−ε for a smoothed fill. ok is false only when smoothing is
// disabled and the cell is unobserved.
func (mod *Model) ratingWithW(u, i int) (val, w11 float64, ok bool) {
	row := mod.m.UserRatings(u)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid].Index) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && int(row[lo].Index) == i {
		return row[lo].Value, mod.cfg.OriginalWeight * mod.decayAt(u, lo), true
	}
	if mod.cfg.DisableSmoothing {
		return 0, 0, false
	}
	return mod.sm.Fill(u, i), 1 - mod.cfg.OriginalWeight, true
}

// topItems returns the top-M GIS neighbours of item i.
func (mod *Model) topItems(i int) []mathx.Scored {
	n := mod.gis.Neighbors(i)
	if len(n) > mod.cfg.M {
		n = n[:mod.cfg.M]
	}
	return n
}
