package core

import (
	"bytes"
	"testing"

	"cfsf/internal/ratings"
)

// saveParts serialises mod as one shared blob plus one blob per shard.
func saveParts(t *testing.T, mod *Model) (shared []byte, shards [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := mod.SaveSharedBlob(&buf); err != nil {
		t.Fatal(err)
	}
	shared = append([]byte(nil), buf.Bytes()...)
	for c := 0; c < mod.Clusters().K; c++ {
		buf.Reset()
		if err := mod.SaveShardBlob(&buf, c); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, append([]byte(nil), buf.Bytes()...))
	}
	return shared, shards
}

// assembleFromParts loads the blobs back and rebuilds the model the way
// the lifecycle boot path does.
func assembleFromParts(t *testing.T, shared []byte, shards [][]byte) *Model {
	t.Helper()
	sp, err := LoadSharedPart(bytes.NewReader(shared))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]ratings.Entry, sp.NumUsers)
	var times [][]int64
	if sp.HasTimes {
		times = make([][]int64, sp.NumUsers)
	}
	for _, blob := range shards {
		part, err := LoadShardPart(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		for j, u := range part.Users {
			rows[u] = part.Rows[j]
			if sp.HasTimes {
				times[u] = part.Times[j]
			}
		}
	}
	mod, err := AssembleModel(sp, rows, times)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestShardBlobRoundTripPredictsIdentically(t *testing.T) {
	mod, _ := trainSmall(t)
	loaded := func() *Model { sh, ss := saveParts(t, mod); return assembleFromParts(t, sh, ss) }()
	for u := 0; u < mod.Matrix().NumUsers(); u++ {
		for i := 0; i < 25; i++ {
			if a, b := mod.Predict(u, i), loaded.Predict(u, i); a != b {
				t.Fatalf("Predict(%d,%d): %g != %g after part reassembly", u, i, a, b)
			}
		}
	}
	if loaded.Matrix().NumRatings() != mod.Matrix().NumRatings() {
		t.Error("matrix did not round-trip")
	}
	if loaded.Matrix().HasTimes() != mod.Matrix().HasTimes() {
		t.Error("timestamp presence did not round-trip")
	}
}

func TestShardBlobRoundTripWithTimestamps(t *testing.T) {
	mod, _ := trainSmall(t)
	// Fold in timed updates so the matrix carries timestamps.
	ups := []RatingUpdate{
		{User: 1, Item: 2, Value: 4, Time: 1700000100},
		{User: 3, Item: 5, Value: 2, Time: 1700000200},
	}
	next, err := mod.WithUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Matrix().HasTimes() {
		t.Fatal("expected timed matrix")
	}
	loaded := func() *Model { sh, ss := saveParts(t, next); return assembleFromParts(t, sh, ss) }()
	if !loaded.Matrix().HasTimes() {
		t.Fatal("timestamps lost in part round-trip")
	}
	for _, up := range ups {
		ts, ok := loaded.Matrix().RatingTime(up.User, up.Item)
		if !ok || ts != up.Time {
			t.Fatalf("RatingTime(%d,%d) = %d,%v want %d", up.User, up.Item, ts, ok, up.Time)
		}
	}
	for u := 0; u < next.Matrix().NumUsers(); u++ {
		for i := 0; i < 25; i++ {
			if a, b := next.Predict(u, i), loaded.Predict(u, i); a != b {
				t.Fatalf("Predict(%d,%d): %g != %g after timed part reassembly", u, i, a, b)
			}
		}
	}
}

func TestShardBlobDetectsCorruption(t *testing.T) {
	mod, _ := trainSmall(t)
	shared, shards := saveParts(t, mod)

	flip := func(b []byte, at int) []byte {
		out := append([]byte(nil), b...)
		out[at] ^= 0x40
		return out
	}
	if _, err := LoadSharedPart(bytes.NewReader(flip(shared, len(shared)/2))); err == nil {
		t.Error("corrupt shared payload accepted")
	}
	if _, err := LoadShardPart(bytes.NewReader(flip(shards[0], len(shards[0])/2))); err == nil {
		t.Error("corrupt shard payload accepted")
	}
	if _, err := LoadShardPart(bytes.NewReader(flip(shards[0], 3))); err == nil {
		t.Error("corrupt magic accepted")
	}
	// Truncation.
	if _, err := LoadShardPart(bytes.NewReader(shards[0][:len(shards[0])-5])); err == nil {
		t.Error("truncated shard blob accepted")
	}
	// Kind confusion: a shard blob is not a shared blob.
	if _, err := LoadSharedPart(bytes.NewReader(shards[0])); err == nil {
		t.Error("shard blob accepted as shared blob")
	}
}

func TestApplyReportsDirtyShards(t *testing.T) {
	mod, _ := trainSmall(t)
	s := NewSharded(mod)

	ups := []RatingUpdate{{User: 7, Item: 3, Value: 5}}
	next, err := s.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	dirty := next.DirtyShards()
	if len(dirty) == 0 {
		t.Fatal("apply reported no dirty shards")
	}
	// The pre-apply routing of every changed user must be dirty, and the
	// post-apply assignment too.
	want := map[int]bool{s.ShardOf(7): true, next.ShardOf(7): true}
	got := map[int]bool{}
	for _, c := range dirty {
		got[c] = true
	}
	for c := range want {
		if !got[c] {
			t.Errorf("shard %d (routing of user 7) not reported dirty: %v", c, dirty)
		}
	}
	// Ascending and unique.
	for i := 1; i < len(dirty); i++ {
		if dirty[i] <= dirty[i-1] {
			t.Fatalf("dirty shards not ascending: %v", dirty)
		}
	}

	// RebuildGIS touches only shared state.
	if d := next.RebuildGIS().DirtyShards(); d != nil {
		t.Errorf("RebuildGIS dirtied shard rows: %v", d)
	}

	// RetrainShard dirties at least the retrained shard.
	rt, err := next.RetrainShard(2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range rt.DirtyShards() {
		if c == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("retrained shard 2 not in dirty set %v", rt.DirtyShards())
	}
}
