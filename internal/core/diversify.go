package core

// RecommendDiverse re-ranks the top recommendations with maximal
// marginal relevance (MMR): each pick maximises
//
//	tradeoff·score − (1−tradeoff)·maxSimToAlreadyPicked
//
// using the GIS as the item–item similarity source, so the returned list
// trades a little predicted rating for breadth across the catalogue.
// tradeoff = 1 reproduces Recommend's pure relevance order; 0 is pure
// diversity. The candidate pool is the top 4×n items by predicted score.
func (mod *Model) RecommendDiverse(user, n int, tradeoff float64) []Recommendation {
	if n <= 0 {
		return nil
	}
	if tradeoff < 0 {
		tradeoff = 0
	}
	if tradeoff > 1 {
		tradeoff = 1
	}
	pool := mod.Recommend(user, 4*n)
	if len(pool) == 0 {
		return nil
	}

	// Normalise scores into [0,1] so the relevance and similarity terms
	// are commensurable.
	lo, hi := pool[len(pool)-1].Score, pool[0].Score
	span := hi - lo
	rel := make([]float64, len(pool))
	for i, r := range pool {
		if span > 0 {
			rel[i] = (r.Score - lo) / span
		} else {
			rel[i] = 1
		}
	}

	picked := make([]Recommendation, 0, n)
	pickedIdx := make([]int, 0, n)
	used := make([]bool, len(pool))
	for len(picked) < n && len(picked) < len(pool) {
		bestIdx, bestVal := -1, 0.0
		for i := range pool {
			if used[i] {
				continue
			}
			maxSim := 0.0
			for _, j := range pickedIdx {
				if s, ok := mod.gis.Sim(pool[i].Item, pool[j].Item); ok && s > maxSim {
					maxSim = s
				}
			}
			val := tradeoff*rel[i] - (1-tradeoff)*maxSim
			if bestIdx == -1 || val > bestVal ||
				(val == bestVal && pool[i].Item < pool[bestIdx].Item) {
				bestIdx, bestVal = i, val
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		picked = append(picked, pool[bestIdx])
		pickedIdx = append(pickedIdx, bestIdx)
	}
	return picked
}

// IntraListSimilarity measures the diversity of a recommendation list:
// the mean pairwise GIS similarity (lower = more diverse). Pairs the GIS
// does not cover count as 0.
func (mod *Model) IntraListSimilarity(recs []Recommendation) float64 {
	if len(recs) < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if s, ok := mod.gis.Sim(recs[i].Item, recs[j].Item); ok {
				sum += s
			}
			pairs++
		}
	}
	return sum / float64(pairs)
}
