package core

import (
	"math"
	"testing"

	"cfsf/internal/synth"
)

// TestEq12Eq14AgainstReference re-computes SIR′, SUR′, SUIR′ and the
// Eq. 14 fusion from the model's exposed artefacts (GIS, smoother,
// neighbour lists) with straightforward reference code, and checks the
// production path — which uses merge iteration and caches — against it
// cell by cell. This pins the algebra of §IV-F independently of the
// optimised implementation.
func TestEq12Eq14AgainstReference(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Users = 100
	cfg.Items = 120
	cfg.MinPerUser = 12
	cfg.MeanPerUser = 24
	cfg.Archetypes = 6
	d := synth.MustGenerate(cfg)

	mcfg := DefaultConfig()
	mcfg.M = 15
	mcfg.K = 8
	mcfg.Clusters = 6
	mod, err := Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	eps := mcfg.OriginalWeight
	w11 := func(u, i int) (r float64, w float64) {
		if v, ok := mod.Matrix().Rating(u, i); ok {
			return v, eps // no time decay in this dataset protocol path... decay is off only if tau==0
		}
		v, _ := mod.Smoother().Rating(u, i)
		return v, 1 - eps
	}
	// Decay must be off for the reference to hold with constant ε.
	if mod.decay != nil {
		t.Fatal("expected decay off")
	}

	checked := 0
	for user := 0; user < 25; user++ {
		for item := 0; item < 20; item++ {
			p := mod.PredictDetailed(user, item)

			// Reference SIR′ over the top-M GIS neighbours.
			items := mod.GIS().Neighbors(item)
			if len(items) > mcfg.M {
				items = items[:mcfg.M]
			}
			var sirNum, sirDen float64
			for _, it := range items {
				r, w := w11(user, int(it.Index))
				sirNum += w * it.Score * r
				sirDen += w * it.Score
			}

			// Reference SUR′/SUIR′ over the same neighbour selection the
			// model made (Eq. 10 selection itself is covered by
			// TestFullUserSearchConsistent and eq10 bounds tests).
			neighbours := mod.likeMindedUsers(user)
			var surNum, surDen float64
			for _, lm := range neighbours {
				tU := int(lm.user)
				r, w := w11(tU, item)
				surNum += w * lm.sim * (r - mod.Matrix().UserMean(tU))
				surDen += w * lm.sim
			}
			var suirNum, suirDen float64
			for _, lm := range neighbours {
				tU := int(lm.user)
				for _, it := range items {
					ps := pairSim(it.Score, lm.sim)
					if ps <= 0 {
						continue
					}
					r, w := w11(tU, int(it.Index))
					suirNum += w * ps * r
					suirDen += w * ps
				}
			}

			// Compare components.
			if sirDen > 0 {
				if !p.HasSIR || math.Abs(p.SIR-sirNum/sirDen) > 1e-9 {
					t.Fatalf("(%d,%d) SIR' = %v/%v, reference %g", user, item, p.SIR, p.HasSIR, sirNum/sirDen)
				}
			} else if p.HasSIR {
				t.Fatalf("(%d,%d) SIR' present without support", user, item)
			}
			if surDen > 0 {
				want := mod.Matrix().UserMean(user) + surNum/surDen
				if !p.HasSUR || math.Abs(p.SUR-want) > 1e-9 {
					t.Fatalf("(%d,%d) SUR' = %v/%v, reference %g", user, item, p.SUR, p.HasSUR, want)
				}
			}
			if suirDen > 0 {
				want := suirNum / suirDen
				if !p.HasSUIR || math.Abs(p.SUIR-want) > 1e-9 {
					t.Fatalf("(%d,%d) SUIR' = %v/%v, reference %g", user, item, p.SUIR, p.HasSUIR, want)
				}
			}

			// Eq. 14 with renormalisation.
			var num, den float64
			if p.HasSIR {
				num += (1 - mcfg.Delta) * (1 - mcfg.Lambda) * p.SIR
				den += (1 - mcfg.Delta) * (1 - mcfg.Lambda)
			}
			if p.HasSUR {
				num += (1 - mcfg.Delta) * mcfg.Lambda * p.SUR
				den += (1 - mcfg.Delta) * mcfg.Lambda
			}
			if p.HasSUIR {
				num += mcfg.Delta * p.SUIR
				den += mcfg.Delta
			}
			if den > 0 {
				want := num / den
				if want < 1 {
					want = 1
				}
				if want > 5 {
					want = 5
				}
				if math.Abs(p.Value-want) > 1e-9 {
					t.Fatalf("(%d,%d) fused = %g, reference %g", user, item, p.Value, want)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cells checked")
	}
}
