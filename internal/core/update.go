package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cfsf/internal/ratings"
	"cfsf/internal/smoothing"
)

// RatingUpdate is one new or revised rating fed to WithUpdates. User and
// Item ids one past the current bounds grow the matrix (a new user or a
// new catalogue item). WithUpdates itself accepts any non-negative id —
// an id far past the bounds allocates every row up to it — so callers
// exposed to untrusted input (internal/server) must enforce a growth
// margin: reject ids at or beyond current bounds + margin before calling
// WithUpdates. The serving default margin of 1 admits exactly the next
// fresh user/item id.
type RatingUpdate struct {
	User  int
	Item  int
	Value float64
	// Time is an optional unix timestamp for the rating (used by the
	// time-decay extension; 0 = untimed).
	Time int64
}

// WithUpdates returns a new model that incorporates the given ratings
// without rerunning the full offline phase — the paper's §VI future work
// ("how it can keep GIS up-to-date"). The original model is untouched and
// stays valid.
//
// Incremental steps:
//
//   - the rating matrix is rebuilt (it is immutable by design; the
//     rebuild is a single O(nnz) pass);
//   - GIS neighbour lists are refreshed only for the items whose columns
//     changed (similarity.GIS.Refresh);
//   - users whose rows changed (and brand-new users) are reassigned to
//     their nearest existing centroid — K-means itself does not rerun;
//   - smoothing deviations and iCluster rankings are recomputed (both
//     are cheap O(nnz) passes);
//   - the per-user neighbour cache starts cold.
//
// Accuracy note: because centroids are not re-fitted, a long stream of
// updates slowly degrades the clustering; retrain fully at a cadence that
// suits the application (the Stats of the returned model record how much
// cheaper the refresh was).
//
//cfsf:wallclock-ok refresh durations recorded in TrainStats only; no clock value reaches predictions or replayed state
func (mod *Model) WithUpdates(updates []RatingUpdate) (*Model, error) {
	if len(updates) == 0 {
		return mod, nil
	}
	start := time.Now()

	numUsers, numItems := mod.m.NumUsers(), mod.m.NumItems()
	for _, up := range updates {
		if up.User < 0 || up.Item < 0 {
			return nil, fmt.Errorf("cfsf: negative id in update (%d,%d)", up.User, up.Item)
		}
		if up.User >= numUsers {
			numUsers = up.User + 1
		}
		if up.Item >= numItems {
			numItems = up.Item + 1
		}
	}

	// Rebuild the immutable matrix with the updates applied.
	b := ratings.NewBuilder(numUsers, numItems)
	b.SetScale(mod.m.MinRating(), mod.m.MaxRating())
	hasTimes := mod.m.HasTimes()
	for u := 0; u < mod.m.NumUsers(); u++ {
		times := mod.m.UserRatingTimes(u)
		for k, e := range mod.m.UserRatings(u) {
			if hasTimes {
				if err := b.AddWithTime(u, int(e.Index), e.Value, times[k]); err != nil {
					return nil, err
				}
				continue
			}
			b.MustAdd(u, int(e.Index), e.Value)
		}
	}
	changedUsers := map[int]bool{}
	changedItems := map[int]bool{}
	for _, up := range updates {
		var err error
		if hasTimes || up.Time != 0 {
			err = b.AddWithTime(up.User, up.Item, up.Value, up.Time)
		} else {
			err = b.Add(up.User, up.Item, up.Value)
		}
		if err != nil {
			return nil, err
		}
		changedUsers[up.User] = true
		changedItems[up.Item] = true
	}
	m := b.Build()

	// Sorted so the refresh passes below see the changed sets in a fixed
	// order: map iteration order varies per run, and an order-dependent
	// refresh would break bit-for-bit replay.
	itemList := make([]int, 0, len(changedItems))
	for i := range changedItems {
		itemList = append(itemList, i)
	}
	sort.Ints(itemList)
	userList := make([]int, 0, len(changedUsers))
	for u := range changedUsers {
		userList = append(userList, u)
	}
	sort.Ints(userList)

	next := &Model{cfg: mod.cfg, m: m}

	t := time.Now()
	gisOpts := mod.gis.Options()
	next.gis = mod.gis.Refresh(m, itemList, gisOpts)
	next.stats.GISDuration = time.Since(t)
	next.stats.GISNeighbors = next.gis.TotalNeighbors()

	t = time.Now()
	next.clusters = mod.clusters.ReassignUsers(m, userList)
	next.stats.ClusterDuration = time.Since(t)
	next.stats.ClusterIters = 0 // no K-means pass ran

	next.buildDecay()

	t = time.Now()
	next.sm = smoothing.NewWeighted(m, next.clusters, next.decay)
	next.stats.SmoothDuration = time.Since(t)

	t = time.Now()
	next.ic = smoothing.BuildICluster(next.sm, mod.cfg.Workers)
	next.stats.IClusterDuration = time.Since(t)

	next.neighborCache = make([]atomic.Pointer[[]likeMinded], m.NumUsers())
	// The monolithic rebuild restarts the recommendation cache cold: it
	// refreshes clusters and smoothing wholesale, so the carry proof of
	// reccache.go would find nothing shared to pin entries with anyway.
	next.initRecCache()
	next.buildTopM(mod)
	next.stats.Incremental = true
	next.stats.UpdatesApplied = len(updates)
	next.stats.TotalDuration = time.Since(start)
	return next, nil
}
