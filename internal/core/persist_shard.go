package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"cfsf/internal/cluster"
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
	"cfsf/internal/smoothing"
)

// Per-shard persistence splits the monolithic model snapshot into
// independently loadable parts: one shared blob (config, dimensions, GIS,
// clustering — global by construction) plus one blob per user-cluster
// shard holding that shard's matrix rows. Each blob is wrapped in a
// checksummed, versioned container so a torn or bit-rotted file is
// detected at load and the caller can fall back shard-by-shard instead of
// discarding the whole snapshot.
//
// The parts reassemble through the same Builder row-major rebuild the
// monolithic snapshot uses (ratings.Matrix gob round-trip), so a model
// loaded from parts predicts bit-for-bit like the one that was saved.

// Blob container framing: magic, kind, payload length, CRC32-IEEE of the
// payload, then the gob payload itself.
const (
	blobKindShared byte = 1
	blobKindShard  byte = 2

	blobHeaderSize = 8 + 1 + 8 + 4
	// maxBlobPayload caps a corrupt length field before allocation.
	maxBlobPayload = int64(1) << 34
)

var blobMagic = [8]byte{'C', 'F', 'S', 'F', 'B', 'L', 'B', 1}

// sharedWire is the gob payload of the shared blob: everything global to
// the model except the matrix rows.
//
//cfsf:wire shardBlobVersion
type sharedWire struct {
	Version   int
	Config    Config
	NumUsers  int
	NumItems  int
	MinRating float64
	MaxRating float64
	HasTimes  bool
	GIS       similarity.Snapshot
	Clusters  *cluster.Result
}

// shardWire is the gob payload of one shard blob: the matrix rows (and
// aligned timestamps, when the matrix carries them) of the shard's users
// at write time.
//
//cfsf:wire shardBlobVersion
type shardWire struct {
	Version int
	Shard   int
	// NumUsersAtWrite is the matrix user count when the blob was written.
	// A newer manifest falling back to this blob uses it to distinguish
	// "user missing because it did not exist yet" (patchable from the WAL)
	// from "user missing because it lived in another shard" (not
	// patchable — the older rows are in a blob we are not reading).
	NumUsersAtWrite int
	Users           []int32 // ascending user ids owned by the shard at write
	RowLens         []int32 // per user, number of entries
	Items           []int32 // concatenated row entries, ascending per row
	Values          []float64
	Times           []int64 // empty when the matrix carries no timestamps
}

const shardBlobVersion = 1

func writeBlob(w io.Writer, kind byte, payload []byte) error {
	var hdr [blobHeaderSize]byte
	copy(hdr[:8], blobMagic[:])
	hdr[8] = kind
	binary.BigEndian.PutUint64(hdr[9:], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[17:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cfsf: write blob header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cfsf: write blob payload: %w", err)
	}
	return nil
}

func readBlob(r io.Reader, wantKind byte) ([]byte, error) {
	var hdr [blobHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("cfsf: read blob header: %w", err)
	}
	if [8]byte(hdr[:8]) != blobMagic {
		return nil, fmt.Errorf("cfsf: bad blob magic")
	}
	if hdr[8] != wantKind {
		return nil, fmt.Errorf("cfsf: blob kind %d, want %d", hdr[8], wantKind)
	}
	n := int64(binary.BigEndian.Uint64(hdr[9:17]))
	if n < 0 || n > maxBlobPayload {
		return nil, fmt.Errorf("cfsf: blob payload length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cfsf: read blob payload: %w", err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.BigEndian.Uint32(hdr[17:]) {
		return nil, fmt.Errorf("cfsf: blob checksum mismatch")
	}
	return payload, nil
}

// SaveSharedBlob writes the model's shared part (config, dims, GIS,
// clustering) as a checksummed blob.
func (mod *Model) SaveSharedBlob(w io.Writer) error {
	wire := sharedWire{
		Version:   shardBlobVersion,
		Config:    mod.cfg,
		NumUsers:  mod.m.NumUsers(),
		NumItems:  mod.m.NumItems(),
		MinRating: mod.m.MinRating(),
		MaxRating: mod.m.MaxRating(),
		HasTimes:  mod.m.HasTimes(),
		GIS:       mod.gis.Snapshot(),
		Clusters:  mod.clusters,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("cfsf: encode shared blob: %w", err)
	}
	return writeBlob(w, blobKindShared, buf.Bytes())
}

// SaveShardBlob writes the matrix rows of one shard's users as a
// checksummed blob.
func (mod *Model) SaveShardBlob(w io.Writer, shard int) error {
	if shard < 0 || shard >= mod.clusters.K {
		return fmt.Errorf("cfsf: shard %d out of range [0,%d)", shard, mod.clusters.K)
	}
	members := mod.clusters.Members[shard]
	wire := shardWire{
		Version:         shardBlobVersion,
		Shard:           shard,
		NumUsersAtWrite: mod.m.NumUsers(),
		Users:           make([]int32, 0, len(members)),
		RowLens:         make([]int32, 0, len(members)),
	}
	hasTimes := mod.m.HasTimes()
	for _, u := range members {
		row := mod.m.UserRatings(u)
		wire.Users = append(wire.Users, int32(u))
		wire.RowLens = append(wire.RowLens, int32(len(row)))
		for _, e := range row {
			wire.Items = append(wire.Items, e.Index)
			wire.Values = append(wire.Values, e.Value)
		}
		if hasTimes {
			wire.Times = append(wire.Times, mod.m.UserRatingTimes(u)...)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("cfsf: encode shard blob: %w", err)
	}
	return writeBlob(w, blobKindShard, buf.Bytes())
}

// SharedPart is a decoded shared blob.
type SharedPart struct {
	Config    Config
	NumUsers  int
	NumItems  int
	MinRating float64
	MaxRating float64
	HasTimes  bool
	GIS       similarity.Snapshot
	Clusters  *cluster.Result
}

// NumShards returns the shard count recorded in the shared part.
func (sp *SharedPart) NumShards() int { return sp.Clusters.K }

// Members returns the user ids of one shard under this part's
// clustering. The slice is shared and must not be modified.
func (sp *SharedPart) Members(shard int) []int { return sp.Clusters.Members[shard] }

// LoadSharedPart decodes and validates a shared blob.
func LoadSharedPart(r io.Reader) (*SharedPart, error) {
	payload, err := readBlob(r, blobKindShared)
	if err != nil {
		return nil, err
	}
	var wire sharedWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("cfsf: decode shared blob: %w", err)
	}
	if wire.Version != shardBlobVersion {
		return nil, fmt.Errorf("cfsf: unsupported shared blob version %d", wire.Version)
	}
	if err := wire.Config.Validate(); err != nil {
		return nil, fmt.Errorf("cfsf: corrupt shared blob: %w", err)
	}
	if wire.Clusters == nil {
		return nil, fmt.Errorf("cfsf: corrupt shared blob: missing clustering")
	}
	if len(wire.Clusters.Assign) != wire.NumUsers {
		return nil, fmt.Errorf("cfsf: corrupt shared blob: %d assignments for %d users",
			len(wire.Clusters.Assign), wire.NumUsers)
	}
	return &SharedPart{
		Config:    wire.Config,
		NumUsers:  wire.NumUsers,
		NumItems:  wire.NumItems,
		MinRating: wire.MinRating,
		MaxRating: wire.MaxRating,
		HasTimes:  wire.HasTimes,
		GIS:       wire.GIS,
		Clusters:  wire.Clusters,
	}, nil
}

// ShardPart is a decoded shard blob: the rows of the shard's users at
// the time the blob was written.
type ShardPart struct {
	Shard           int
	NumUsersAtWrite int
	Users           []int
	Rows            [][]ratings.Entry
	Times           [][]int64 // nil when the blob carries no timestamps
}

// LoadShardPart decodes and validates a shard blob.
func LoadShardPart(r io.Reader) (*ShardPart, error) {
	payload, err := readBlob(r, blobKindShard)
	if err != nil {
		return nil, err
	}
	var wire shardWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("cfsf: decode shard blob: %w", err)
	}
	if wire.Version != shardBlobVersion {
		return nil, fmt.Errorf("cfsf: unsupported shard blob version %d", wire.Version)
	}
	if len(wire.RowLens) != len(wire.Users) {
		return nil, fmt.Errorf("cfsf: corrupt shard blob: %d row lengths for %d users",
			len(wire.RowLens), len(wire.Users))
	}
	total := 0
	for _, n := range wire.RowLens {
		if n < 0 {
			return nil, fmt.Errorf("cfsf: corrupt shard blob: negative row length")
		}
		total += int(n)
	}
	if len(wire.Items) != total || len(wire.Values) != total {
		return nil, fmt.Errorf("cfsf: corrupt shard blob: %d/%d entries for %d row slots",
			len(wire.Items), len(wire.Values), total)
	}
	hasTimes := len(wire.Times) > 0
	if hasTimes && len(wire.Times) != total {
		return nil, fmt.Errorf("cfsf: corrupt shard blob: %d timestamps for %d entries",
			len(wire.Times), total)
	}
	sp := &ShardPart{
		Shard:           wire.Shard,
		NumUsersAtWrite: wire.NumUsersAtWrite,
		Users:           make([]int, len(wire.Users)),
		Rows:            make([][]ratings.Entry, len(wire.Users)),
	}
	if hasTimes {
		sp.Times = make([][]int64, len(wire.Users))
	}
	off := 0
	for j, u := range wire.Users {
		if j > 0 && wire.Users[j] <= wire.Users[j-1] {
			return nil, fmt.Errorf("cfsf: corrupt shard blob: user ids not ascending")
		}
		n := int(wire.RowLens[j])
		sp.Users[j] = int(u)
		row := make([]ratings.Entry, n)
		for k := 0; k < n; k++ {
			row[k] = ratings.Entry{Index: wire.Items[off+k], Value: wire.Values[off+k]}
		}
		sp.Rows[j] = row
		if hasTimes {
			sp.Times[j] = append([]int64(nil), wire.Times[off:off+n]...)
		}
		off += n
	}
	return sp, nil
}

// AssembleModel rebuilds a full model from a shared part plus dense
// per-user rows (rows[u] is user u's sorted rating list; times aligns
// with it and must be non-nil exactly when the shared part records
// timestamps). The rebuild is the same Builder row-major pass the
// monolithic snapshot load performs, so the assembled model predicts
// bit-for-bit like the saved one.
//
//cfsf:wallclock-ok rebuild duration recorded in TrainStats only; no clock value reaches predictions or replayed state
func AssembleModel(shared *SharedPart, rows [][]ratings.Entry, times [][]int64) (*Model, error) {
	if len(rows) != shared.NumUsers {
		return nil, fmt.Errorf("cfsf: assemble: %d rows for %d users", len(rows), shared.NumUsers)
	}
	if shared.HasTimes != (times != nil) {
		return nil, fmt.Errorf("cfsf: assemble: timestamps present=%v but shared part records %v",
			times != nil, shared.HasTimes)
	}
	b := ratings.NewBuilder(shared.NumUsers, shared.NumItems)
	b.SetScale(shared.MinRating, shared.MaxRating)
	for u, row := range rows {
		for k, e := range row {
			var err error
			if shared.HasTimes {
				err = b.AddWithTime(u, int(e.Index), e.Value, times[u][k])
			} else {
				err = b.Add(u, int(e.Index), e.Value)
			}
			if err != nil {
				return nil, fmt.Errorf("cfsf: assemble: %w", err)
			}
		}
	}
	start := time.Now()
	mod := rebuildModel(shared.Config, b.Build(), shared.GIS, shared.Clusters)
	stampRebuildDuration(mod, start)
	return mod, nil
}

// stampRebuildDuration records how long reconstructing the derived
// offline state took in the model's TrainStats.
//
//cfsf:init-only called by Load and AssembleModel on a model that has not been returned yet
//cfsf:wallclock-ok rebuild duration recorded in TrainStats only; no clock value reaches predictions or replayed state
func stampRebuildDuration(mod *Model, start time.Time) {
	mod.stats.TotalDuration = time.Since(start)
}

// rebuildModel reconstructs the derived offline state (smoothing tables,
// iCluster rankings, caches) around persisted artefacts, exactly as Load
// does for a monolithic snapshot.
func rebuildModel(cfg Config, m *ratings.Matrix, gisSnap similarity.Snapshot, clusters *cluster.Result) *Model {
	mod := &Model{
		cfg:      cfg,
		m:        m,
		gis:      similarity.FromSnapshot(gisSnap),
		clusters: clusters,
	}
	mod.buildDecay()
	mod.sm = smoothing.NewWeighted(mod.m, mod.clusters, mod.decay)
	mod.ic = smoothing.BuildICluster(mod.sm, mod.cfg.Workers)
	mod.neighborCache = make([]atomic.Pointer[[]likeMinded], mod.m.NumUsers())
	mod.initRecCache()
	mod.buildTopM(nil)
	mod.stats.GISNeighbors = mod.gis.TotalNeighbors()
	mod.stats.ClusterIters = clusters.Iterations
	return mod
}

// DirtyShards returns the ascending shard ids whose persisted rows this
// value's construction invalidated relative to its predecessor: for Apply
// the union of every changed user's pre-apply routing and post-apply
// assignment (RefreshUsers can move users between clusters), for
// RetrainShard the retrained shard plus every destination shard of a
// moved user. Nil means no shard rows changed (e.g. RebuildGIS, which
// only touches shared state).
func (s *ShardedModel) DirtyShards() []int { return s.dirty }

func sortedShardSet(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
