package core

import "testing"

func TestRecommendDiversePureRelevanceMatchesRecommend(t *testing.T) {
	mod, _ := trainSmall(t)
	plain := mod.Recommend(4, 6)
	diverse := mod.RecommendDiverse(4, 6, 1)
	if len(plain) != len(diverse) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(diverse))
	}
	for i := range plain {
		if plain[i].Item != diverse[i].Item {
			t.Fatalf("tradeoff=1 diverged at rank %d: %d vs %d", i, plain[i].Item, diverse[i].Item)
		}
	}
}

func TestRecommendDiverseReducesIntraListSimilarity(t *testing.T) {
	mod, _ := trainSmall(t)
	found := false
	for u := 0; u < 20; u++ {
		plain := mod.Recommend(u, 8)
		diverse := mod.RecommendDiverse(u, 8, 0.5)
		if len(plain) < 8 || len(diverse) < 8 {
			continue
		}
		ps := mod.IntraListSimilarity(plain)
		ds := mod.IntraListSimilarity(diverse)
		if ps == 0 {
			continue // nothing to diversify away
		}
		found = true
		if ds > ps+1e-9 {
			t.Fatalf("user %d: diverse list less diverse (%g) than plain (%g)", u, ds, ps)
		}
	}
	if !found {
		t.Skip("no user with similar items in the top list")
	}
}

func TestRecommendDiverseProperties(t *testing.T) {
	mod, d := trainSmall(t)
	recs := mod.RecommendDiverse(3, 5, 0.3)
	if len(recs) == 0 {
		t.Fatal("no diverse recommendations")
	}
	seen := map[int]bool{}
	rated := map[int]bool{}
	for _, e := range d.Matrix.UserRatings(3) {
		rated[int(e.Index)] = true
	}
	for _, r := range recs {
		if seen[r.Item] {
			t.Fatalf("duplicate item %d", r.Item)
		}
		seen[r.Item] = true
		if rated[r.Item] {
			t.Fatalf("already-rated item %d recommended", r.Item)
		}
	}
}

func TestRecommendDiverseEdgeCases(t *testing.T) {
	mod, _ := trainSmall(t)
	if mod.RecommendDiverse(0, 0, 0.5) != nil {
		t.Error("n=0 must return nil")
	}
	// Out-of-range tradeoffs clamp rather than fail.
	if len(mod.RecommendDiverse(0, 3, -2)) == 0 {
		t.Error("tradeoff<0 must still recommend")
	}
	if len(mod.RecommendDiverse(0, 3, 7)) == 0 {
		t.Error("tradeoff>1 must still recommend")
	}
}

func TestIntraListSimilarityEdge(t *testing.T) {
	mod, _ := trainSmall(t)
	if s := mod.IntraListSimilarity(nil); s != 0 {
		t.Errorf("empty list similarity %g, want 0", s)
	}
	if s := mod.IntraListSimilarity([]Recommendation{{Item: 1}}); s != 0 {
		t.Errorf("singleton similarity %g, want 0", s)
	}
}
