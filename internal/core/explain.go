package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explanation decomposes one CFSF prediction into the concrete evidence
// behind it: which similar items and like-minded users contributed, with
// what weight, and from original or smoothed data. Recommender systems
// expose this to end users ("because you liked X"); here it also serves
// debugging and the examples.
type Explanation struct {
	User, Item int
	Prediction Prediction
	// ItemEvidence lists the top similar items that carried SIR′,
	// strongest contribution first.
	ItemEvidence []ItemEvidence
	// UserEvidence lists the like-minded users that carried SUR′,
	// strongest contribution first.
	UserEvidence []UserEvidence
}

// ItemEvidence is one similar item's contribution to SIR′.
type ItemEvidence struct {
	Item       int
	Similarity float64 // GIS similarity to the active item
	Rating     float64 // the active user's (possibly smoothed) rating of it
	Original   bool    // whether Rating was observed rather than smoothed
	Weight     float64 // share of the SIR′ denominator, in [0,1]
}

// UserEvidence is one like-minded user's contribution to SUR′.
type UserEvidence struct {
	User       int
	Similarity float64 // Eq. 10 similarity to the active user
	Rating     float64 // that user's (possibly smoothed) rating of the item
	Original   bool
	Weight     float64 // share of the SUR′ denominator, in [0,1]
}

// Explain computes the prediction for (user, item) and returns the
// evidence decomposition, keeping at most topEvidence entries per side
// (0 = all).
func (mod *Model) Explain(user, item, topEvidence int) Explanation {
	ex := Explanation{User: user, Item: item}
	ex.Prediction = mod.PredictDetailed(user, item)
	if user < 0 || user >= mod.m.NumUsers() || item < 0 || item >= mod.m.NumItems() {
		return ex
	}

	sorted := mod.topM[item] // id-sorted mirror of the top-M neighbourhood

	var itemDen float64
	mod.forEachLocalRating(user, sorted, func(k int, r float64, orig bool, w11 float64) {
		w := w11 * sorted[k].Score
		itemDen += w
		ex.ItemEvidence = append(ex.ItemEvidence, ItemEvidence{
			Item:       int(sorted[k].Index),
			Similarity: sorted[k].Score,
			Rating:     r,
			Original:   orig,
			Weight:     w,
		})
	})
	if itemDen > 0 {
		for i := range ex.ItemEvidence {
			ex.ItemEvidence[i].Weight /= itemDen
		}
	}
	sort.Slice(ex.ItemEvidence, func(a, b int) bool {
		if ex.ItemEvidence[a].Weight != ex.ItemEvidence[b].Weight {
			return ex.ItemEvidence[a].Weight > ex.ItemEvidence[b].Weight
		}
		return ex.ItemEvidence[a].Item < ex.ItemEvidence[b].Item
	})

	var userDen float64
	for _, lm := range mod.likeMindedUsers(user) {
		t := int(lm.user)
		r, w11, ok := mod.ratingWithW(t, item)
		if !ok {
			continue
		}
		_, orig := mod.m.Rating(t, item)
		w := w11 * lm.sim
		userDen += w
		ex.UserEvidence = append(ex.UserEvidence, UserEvidence{
			User:       t,
			Similarity: lm.sim,
			Rating:     r,
			Original:   orig,
			Weight:     w,
		})
	}
	if userDen > 0 {
		for i := range ex.UserEvidence {
			ex.UserEvidence[i].Weight /= userDen
		}
	}
	sort.Slice(ex.UserEvidence, func(a, b int) bool {
		if ex.UserEvidence[a].Weight != ex.UserEvidence[b].Weight {
			return ex.UserEvidence[a].Weight > ex.UserEvidence[b].Weight
		}
		return ex.UserEvidence[a].User < ex.UserEvidence[b].User
	})

	if topEvidence > 0 {
		if len(ex.ItemEvidence) > topEvidence {
			ex.ItemEvidence = ex.ItemEvidence[:topEvidence]
		}
		if len(ex.UserEvidence) > topEvidence {
			ex.UserEvidence = ex.UserEvidence[:topEvidence]
		}
	}
	return ex
}

// String renders a compact human-readable explanation.
func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predict(user=%d, item=%d) = %.3f (SIR'=%.3f SUR'=%.3f SUIR'=%.3f)\n",
		ex.User, ex.Item, ex.Prediction.Value, ex.Prediction.SIR, ex.Prediction.SUR, ex.Prediction.SUIR)
	if len(ex.ItemEvidence) > 0 {
		b.WriteString("because of similar items:\n")
		for _, e := range ex.ItemEvidence {
			fmt.Fprintf(&b, "  item %-5d sim %.3f rated %.2f (%s) weight %.1f%%\n",
				e.Item, e.Similarity, e.Rating, provenance(e.Original), 100*e.Weight)
		}
	}
	if len(ex.UserEvidence) > 0 {
		b.WriteString("because of like-minded users:\n")
		for _, e := range ex.UserEvidence {
			fmt.Fprintf(&b, "  user %-5d sim %.3f rated %.2f (%s) weight %.1f%%\n",
				e.User, e.Similarity, e.Rating, provenance(e.Original), 100*e.Weight)
		}
	}
	return b.String()
}

func provenance(original bool) string {
	if original {
		return "observed"
	}
	return "smoothed"
}
