package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// Tests for the per-user recommendation cache (reccache.go). The load-
// bearing property is bit-for-bit parity: a cache-enabled model must
// return exactly what a cache-disabled twin (same training, same apply
// stream) returns, on every read — cold, warm, repaired, or rebuilt
// after a carry — under every config variant.

func equalRecs(a, b []Recommendation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomApplyBatch draws a small batch of valid updates against the
// current matrix bounds, occasionally introducing a fresh user or item
// id (the +1 below) so streams exercise catalogue growth.
func randomApplyBatch(rng *rand.Rand, mod *Model) []RatingUpdate {
	m := mod.Matrix()
	ups := make([]RatingUpdate, 1+rng.Intn(6))
	for i := range ups {
		ups[i] = RatingUpdate{
			User:  rng.Intn(m.NumUsers() + 1),
			Item:  rng.Intn(m.NumItems() + 1),
			Value: float64(1 + rng.Intn(5)),
		}
	}
	return ups
}

// TestRecommendCacheParityAcrossApplyStreams is the cache's acceptance
// property (the Recommend analogue of PR 5's Predict parity): on every
// config variant, a cached lineage driven by a random sharded apply
// stream serves — from cold misses, carried entries, lazy repairs and
// repair fallbacks alike — exactly what the cache-disabled lineage
// computes, and a repeat read (a pure cache hit) returns it again. The
// tinyCache variant keeps entries truncated so the repair boundary
// check and its full-recompute fallback are exercised, not just the
// complete-entry path.
func TestRecommendCacheParityAcrossApplyStreams(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	variants := map[string]func(*Config){
		"default":          func(*Config) {},
		"disableSmoothing": func(c *Config) { c.DisableSmoothing = true },
		"fullUserSearch":   func(c *Config) { c.FullUserSearch = true },
		"tinyCache":        func(c *Config) { c.RecommendCacheSize = 5 },
	}
	before := ReadRecCacheStats()
	for name, mutate := range variants {
		mutate := mutate
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig()
			mutate(&cfg)
			cached, err := Train(d.Matrix, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfgOff := cfg
			cfgOff.RecommendCacheSize = -1
			exact, err := Train(d.Matrix, cfgOff)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				shC, shE := NewSharded(cached), NewSharded(exact)
				p := cached.Matrix().NumUsers()
				users := []int{0, rng.Intn(p), rng.Intn(p), p - 1}
				// Warm the cache before the stream so carry + repair run.
				for _, u := range users {
					shC.Model().Recommend(u, 1+rng.Intn(12))
				}
				for round := 0; round < 3; round++ {
					ups := randomApplyBatch(rng, shC.Model())
					var err error
					if shC, err = shC.Apply(ups); err != nil {
						t.Fatal(err)
					}
					if shE, err = shE.Apply(ups); err != nil {
						t.Fatal(err)
					}
					mc, me := shC.Model(), shE.Model()
					for _, u := range users {
						n := 1 + rng.Intn(12)
						first := mc.Recommend(u, n) // repair or miss
						again := mc.Recommend(u, n) // pure hit
						want := me.Recommend(u, n)
						if !equalRecs(first, want) || !equalRecs(again, want) {
							t.Logf("seed %d round %d user %d n %d:\nfirst %v\nagain %v\nwant  %v",
								seed, round, u, n, first, again, want)
							return false
						}
					}
				}
				// Ground truth: the final generation against the
				// pre-optimisation reference implementation.
				u := users[rng.Intn(len(users))]
				if got, want := shC.Model().Recommend(u, 7), refRecommend(shE.Model(), u, 7); !equalRecs(got, want) {
					t.Logf("seed %d reference user %d: got %v want %v", seed, u, got, want)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Error(err)
			}
		})
	}
	// The streams above must actually have exercised the machinery.
	after := ReadRecCacheStats()
	if after.Hits == before.Hits {
		t.Error("apply streams produced no cache hits")
	}
	if after.Carried == before.Carried {
		t.Error("apply streams never carried an entry across a generation")
	}
	if after.Invalidated == before.Invalidated {
		t.Error("apply streams never invalidated an entry")
	}
}

// TestRecommendCacheRepairExercised pins the delta-repair path
// deterministically: warm every user, apply one single-user batch, and
// require that at least one unchanged user's entry was carried with the
// batch's items queued as pending — then that reading through the repair
// (and a forced repair-boundary situation under a tiny capacity) matches
// the cache-disabled twin exactly.
func TestRecommendCacheRepairExercised(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	cfg.RecommendCacheSize = 5 // truncated entries: boundary check in play
	cached, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := cfg
	cfgOff.RecommendCacheSize = -1
	exact, err := Train(d.Matrix, cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	p := cached.Matrix().NumUsers()
	for u := 0; u < p; u++ {
		cached.Recommend(u, 5)
	}
	ups := []RatingUpdate{{User: 3, Item: 7, Value: 5}, {User: 3, Item: 90, Value: 1}}
	shC, err := NewSharded(cached).Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	shE, err := NewSharded(exact).Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	mc, me := shC.Model(), shE.Model()
	if got := mc.recCache[3].Load(); got != nil {
		t.Error("changed user 3 kept a cache entry across the apply")
	}
	carried := 0
	for u := 0; u < p; u++ {
		if e := mc.recCache[u].Load(); e != nil {
			carried++
			if len(e.pending) == 0 {
				t.Fatalf("carried entry of user %d has no pending items", u)
			}
		}
	}
	if carried == 0 {
		t.Fatal("no entry survived a two-item single-user batch; carry proof is vacuous")
	}
	before := ReadRecCacheStats()
	for u := 0; u < p; u++ {
		for _, n := range []int{3, 5, 9} {
			if got, want := mc.Recommend(u, n), me.Recommend(u, n); !equalRecs(got, want) {
				t.Fatalf("user %d n %d: repaired %v want %v", u, n, got, want)
			}
		}
	}
	after := ReadRecCacheStats()
	if after.Repairs == before.Repairs {
		t.Error("no entry was repaired in place")
	}
}

// TestRecommendCacheColdOnRebuildPaths verifies the never-stale rule on
// every non-incremental path: the monolithic WithUpdates, a GIS rebuild,
// and a snapshot round-trip each hand out a cold cache (replay after a
// crash therefore serves identical rankings from a cold start — the
// lifecycle test proves that end to end).
func TestRecommendCacheColdOnRebuildPaths(t *testing.T) {
	mod, _ := trainSmall(t)
	p := mod.Matrix().NumUsers()
	for u := 0; u < p; u += 3 {
		mod.Recommend(u, 10)
	}
	assertCold := func(label string, m *Model) {
		t.Helper()
		if m.recCache == nil {
			t.Fatalf("%s: cache slots not allocated", label)
		}
		for u := range m.recCache {
			if m.recCache[u].Load() != nil {
				t.Fatalf("%s: user %d has a warm entry on a rebuilt model", label, u)
			}
		}
	}
	next, err := mod.WithUpdates([]RatingUpdate{{User: 1, Item: 2, Value: 4}})
	if err != nil {
		t.Fatal(err)
	}
	assertCold("WithUpdates", next)
	assertCold("RebuildGIS", NewSharded(mod).RebuildGIS().Model())

	var blob bytes.Buffer
	if err := mod.Save(&blob); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&blob)
	if err != nil {
		t.Fatal(err)
	}
	assertCold("Load", loaded)
	// And the reloaded model still serves the same rankings.
	for u := 0; u < p; u += 7 {
		if got, want := loaded.Recommend(u, 10), mod.Recommend(u, 10); !equalRecs(got, want) {
			t.Fatalf("user %d: loaded model recommends %v, original %v", u, got, want)
		}
	}
}

// TestRecommendCacheCarriedAcrossShardRetrain: RetrainShard keeps the
// matrix and GIS, so entries of users whose smoothing cluster was
// untouched survive, and every post-retrain read matches a cache-free
// recompute of the same model.
func TestRecommendCacheCarriedAcrossShardRetrain(t *testing.T) {
	mod, _ := trainSmall(t)
	sh := NewSharded(mod)
	p := mod.Matrix().NumUsers()
	for u := 0; u < p; u++ {
		mod.Recommend(u, 10)
	}
	for shard := 0; shard < sh.NumShards(); shard++ {
		next, err := sh.RetrainShard(shard)
		if err != nil {
			t.Fatal(err)
		}
		sh = next
	}
	final := sh.Model()
	for u := 0; u < p; u += 5 {
		got := final.Recommend(u, 10)
		want := refRecommend(final, u, 10)
		if !equalRecs(got, want) {
			t.Fatalf("user %d after retrain sweep: got %v want %v", u, got, want)
		}
	}
}

// TestRecommendContract pins the nil/non-nil contract: invalid input
// returns nil; valid input returns a non-nil slice even when every
// unrated item has zero support and the result is empty.
func TestRecommendContract(t *testing.T) {
	mod, _ := trainSmall(t)
	p := mod.Matrix().NumUsers()
	for _, bad := range [][2]int{{-1, 5}, {p, 5}, {0, 0}, {2, -3}} {
		if got := mod.Recommend(bad[0], bad[1]); got != nil {
			t.Errorf("Recommend(%d,%d) = %v, want nil for invalid input", bad[0], bad[1], got)
		}
		if got := mod.RecommendAppend(nil, bad[0], bad[1]); got != nil {
			t.Errorf("RecommendAppend(nil,%d,%d) = %v, want dst unchanged", bad[0], bad[1], got)
		}
	}
	if got := mod.Recommend(0, 5); got == nil {
		t.Error("valid input returned nil")
	}

	// A user who rated the whole catalogue: nothing to recommend, and
	// the result must be non-nil empty rather than nil.
	b := ratings.NewBuilder(2, 2).SetScale(1, 5)
	b.MustAdd(0, 0, 4)
	b.MustAdd(0, 1, 3)
	b.MustAdd(1, 0, 5)
	cfg := DefaultConfig()
	cfg.M, cfg.K, cfg.Clusters = 2, 1, 1
	tiny, err := Train(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := tiny.Recommend(0, 5)
	if got == nil {
		t.Fatal("saturated user: Recommend returned nil, want non-nil empty slice")
	}
	if len(got) != 0 {
		t.Fatalf("saturated user: Recommend returned %v, want empty", got)
	}
	// Twice: the second read serves the (complete, empty) cached entry.
	if got := tiny.Recommend(0, 5); got == nil || len(got) != 0 {
		t.Fatalf("saturated user, cached read: got %v, want non-nil empty", got)
	}
}

// TestRecommendAppendWarmIsAllocationFree is the in-repo version of the
// CI benchmark gate: a warm cached read through caller-owned storage
// must not allocate at all.
func TestRecommendAppendWarmIsAllocationFree(t *testing.T) {
	mod, _ := trainSmall(t)
	mod.Recommend(4, 10) // warm
	dst := make([]Recommendation, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		dst = mod.RecommendAppend(dst[:0], 4, 10)
	})
	if allocs != 0 {
		t.Errorf("warm RecommendAppend allocates %.1f times per call, want 0", allocs)
	}
	if len(dst) == 0 {
		t.Error("warm RecommendAppend returned nothing")
	}
}

// TestScratchPoolShedsOversizedBuffers pins the pooled-scratch policy
// fix: a scratch whose buffers outgrew the current catalogue by more
// than 2× drops them before returning to the pool instead of pinning
// the high-water mark forever.
func TestScratchPoolShedsOversizedBuffers(t *testing.T) {
	big := &recScratch{scores: make([]float64, 10_000)}
	putRecScratch(big, 300)
	if big.scores != nil {
		t.Errorf("scores buffer of cap %d kept for a %d-item catalogue", cap(big.scores), 300)
	}
	fit := &recScratch{scores: make([]float64, 500)}
	putRecScratch(fit, 300)
	if fit.scores == nil {
		t.Error("scores buffer within 2× of the catalogue was dropped")
	}
}

// TestRecommendCacheDisabled: with a negative RecommendCacheSize no
// slots are allocated, reads always take the exact path, and outputs
// still match the reference.
func TestRecommendCacheDisabled(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	cfg.RecommendCacheSize = -1
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mod.recCache != nil {
		t.Fatal("cache slots allocated although the cache is disabled")
	}
	if got, want := mod.Recommend(5, 8), refRecommend(mod, 5, 8); !equalRecs(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
