package core

import (
	"math"
	"testing"

	"cfsf/internal/synth"
)

func TestWithUpdatesBasic(t *testing.T) {
	mod, d := trainSmall(t)
	m := d.Matrix

	// Find a cell the user has not rated.
	u, item := 3, -1
	for i := 0; i < m.NumItems(); i++ {
		if _, ok := m.Rating(u, i); !ok {
			item = i
			break
		}
	}
	if item < 0 {
		t.Skip("user rated everything")
	}

	next, err := mod.WithUpdates([]RatingUpdate{{User: u, Item: item, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := next.Matrix().Rating(u, item); !ok || r != 5 {
		t.Fatalf("update not applied: %g,%v", r, ok)
	}
	// Original model unchanged.
	if _, ok := mod.Matrix().Rating(u, item); ok {
		t.Fatal("original model mutated")
	}
	// Predictions still sane.
	v := next.Predict(u, item)
	if math.IsNaN(v) || v < 1 || v > 5 {
		t.Fatalf("post-update Predict = %g", v)
	}
}

func TestWithUpdatesEmptyIsNoop(t *testing.T) {
	mod, _ := trainSmall(t)
	next, err := mod.WithUpdates(nil)
	if err != nil {
		t.Fatal(err)
	}
	if next != mod {
		t.Error("empty update must return the same model")
	}
}

func TestWithUpdatesRejectsNegativeIDs(t *testing.T) {
	mod, _ := trainSmall(t)
	if _, err := mod.WithUpdates([]RatingUpdate{{User: -1, Item: 0, Value: 3}}); err == nil {
		t.Error("negative user must error")
	}
	if _, err := mod.WithUpdates([]RatingUpdate{{User: 0, Item: -2, Value: 3}}); err == nil {
		t.Error("negative item must error")
	}
}

func TestWithUpdatesNewUser(t *testing.T) {
	mod, d := trainSmall(t)
	newUser := d.Matrix.NumUsers()
	ups := []RatingUpdate{
		{User: newUser, Item: 0, Value: 5},
		{User: newUser, Item: 1, Value: 4},
		{User: newUser, Item: 2, Value: 1},
	}
	next, err := mod.WithUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	if next.Matrix().NumUsers() != newUser+1 {
		t.Fatalf("users = %d, want %d", next.Matrix().NumUsers(), newUser+1)
	}
	// The new user must be assigned to a valid cluster and predictable.
	c := next.Clusters().Assign[newUser]
	if c < 0 || c >= next.Clusters().K {
		t.Fatalf("new user assigned invalid cluster %d", c)
	}
	v := next.Predict(newUser, 10)
	if math.IsNaN(v) || v < 1 || v > 5 {
		t.Fatalf("new-user Predict = %g", v)
	}
}

func TestWithUpdatesNewItem(t *testing.T) {
	mod, d := trainSmall(t)
	newItem := d.Matrix.NumItems()
	var ups []RatingUpdate
	for u := 0; u < 12; u++ {
		ups = append(ups, RatingUpdate{User: u, Item: newItem, Value: float64(1 + u%5)})
	}
	next, err := mod.WithUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	if next.Matrix().NumItems() != newItem+1 {
		t.Fatalf("items = %d, want %d", next.Matrix().NumItems(), newItem+1)
	}
	if next.GIS().NumItems() != newItem+1 {
		t.Fatalf("GIS covers %d items, want %d", next.GIS().NumItems(), newItem+1)
	}
	v := next.Predict(20, newItem)
	if math.IsNaN(v) || v < 1 || v > 5 {
		t.Fatalf("new-item Predict = %g", v)
	}
}

// TestWithUpdatesApproximatesRetrain: the incremental model's accuracy on
// a probe set must stay close to a full retrain after a modest batch of
// updates.
func TestWithUpdatesApproximatesRetrain(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cfg := smallConfig()
	cfg.GIS.TopN = 0 // exact GIS refresh regime
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var ups []RatingUpdate
	for u := 0; u < 10; u++ {
		for i := 0; i < d.Matrix.NumItems() && len(ups) < 30; i++ {
			if _, ok := d.Matrix.Rating(u, i); !ok {
				ups = append(ups, RatingUpdate{User: u, Item: i, Value: float64(1 + (u+i)%5)})
				break
			}
		}
	}
	inc, err := mod.WithUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Train(inc.Matrix(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Compare predictions over a probe grid: mean absolute divergence
	// should be small (clustering may differ slightly: centroids are not
	// re-fitted incrementally).
	var sum float64
	n := 0
	for u := 0; u < 40; u++ {
		for i := 0; i < 20; i++ {
			sum += math.Abs(inc.Predict(u, i) - full.Predict(u, i))
			n++
		}
	}
	if avg := sum / float64(n); avg > 0.15 {
		t.Errorf("incremental vs retrain divergence %.4f > 0.15", avg)
	}
}

func TestWithUpdatesChainable(t *testing.T) {
	mod, d := trainSmall(t)
	cur := mod
	var err error
	for k := 0; k < 3; k++ {
		cur, err = cur.WithUpdates([]RatingUpdate{{User: k, Item: k + 50, Value: 4}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3; k++ {
		if r, ok := cur.Matrix().Rating(k, k+50); !ok || r != 4 {
			t.Fatalf("chained update %d lost: %g,%v", k, r, ok)
		}
	}
	if cur.Matrix().NumRatings() < d.Matrix.NumRatings() {
		t.Error("ratings lost across chained updates")
	}
}
