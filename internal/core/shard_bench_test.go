package core

import (
	"testing"

	"cfsf/internal/synth"
)

// Benchmarks for the sharded vs monolithic apply/retrain paths at the
// paper's C=30. The batch targets users of a single shard — the common
// case the sharding refactor optimises — so the monolithic number pays
// the full O(C·nnz) rebuild while the sharded one touches one cluster.

// benchModel trains at the paper's MovieLens-100K scale (943 users, 1682
// items, ~100k ratings) with the paper's C=30 — the workload the sharding
// refactor targets.
func benchModel(b *testing.B) *Model {
	b.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 943
	cfg.Items = 1682
	cfg.MinPerUser = 20
	cfg.MeanPerUser = 106
	cfg.Archetypes = 16
	d := synth.MustGenerate(cfg)
	mcfg := DefaultConfig()
	mcfg.Clusters = 30
	mod, err := Train(d.Matrix, mcfg)
	if err != nil {
		b.Fatal(err)
	}
	return mod
}

// singleShardBatch builds a batch touching only shard 0's users, re-rating
// items they already rated so no user changes cluster.
func singleShardBatch(b *testing.B, mod *Model, n int) []RatingUpdate {
	b.Helper()
	members := mod.Clusters().Members[0]
	var ups []RatingUpdate
	for len(ups) < n {
		for _, u := range members {
			row := mod.Matrix().UserRatings(u)
			if len(row) == 0 {
				continue
			}
			e := row[len(ups)%len(row)]
			ups = append(ups, RatingUpdate{User: u, Item: int(e.Index), Value: 3})
			if len(ups) == n {
				break
			}
		}
		if len(members) == 0 {
			b.Skip("empty shard 0")
		}
	}
	return ups
}

func BenchmarkMonolithicApplySingleShardBatch(b *testing.B) {
	mod := benchModel(b)
	ups := singleShardBatch(b, mod, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mod.WithUpdates(ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

func BenchmarkShardedApplySingleShardBatch(b *testing.B) {
	mod := benchModel(b)
	sharded := NewSharded(mod)
	ups := singleShardBatch(b, mod, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sharded.Apply(ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

func BenchmarkMonolithicFullRetrain(b *testing.B) {
	mod := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(mod.Matrix(), mod.Config()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedRetrainOneShard(b *testing.B) {
	mod := benchModel(b)
	sharded := NewSharded(mod)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sharded.RetrainShard(i % sharded.NumShards()); err != nil {
			b.Fatal(err)
		}
	}
}
