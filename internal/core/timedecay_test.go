package core

import (
	"math"
	"testing"

	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

func driftSynth() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 150
	cfg.Items = 200
	cfg.MinPerUser = 25
	cfg.MeanPerUser = 45
	cfg.Archetypes = 10
	cfg.DriftStd = 1.5
	return cfg
}

func TestDecayDisabledByDefault(t *testing.T) {
	mod, _ := trainSmall(t)
	if mod.decay != nil {
		t.Error("decay must be nil when TimeDecayTau is 0")
	}
	if mod.decayAt(0, 0) != 1 {
		t.Error("decayAt must be 1 when decay is off")
	}
}

func TestDecayBuilt(t *testing.T) {
	d := synth.MustGenerate(driftSynth())
	cfg := smallConfig()
	cfg.TimeDecayTau = 90 * 24 * 3600
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mod.decay == nil {
		t.Fatal("decay not built despite tau > 0 and timestamps present")
	}
	// Multipliers are in (0, 1], newest rating gets 1.
	max := 0.0
	for u := range mod.decay {
		for _, v := range mod.decay[u] {
			if v <= 0 || v > 1 {
				t.Fatalf("decay %g out of (0,1]", v)
			}
			if v > max {
				max = v
			}
		}
	}
	if math.Abs(max-1) > 1e-9 {
		t.Errorf("newest rating decay %g, want 1", max)
	}
	// Predictions remain valid.
	for u := 0; u < 10; u++ {
		v := mod.Predict(u, u+5)
		if math.IsNaN(v) || v < 1 || v > 5 {
			t.Fatalf("decayed Predict = %g", v)
		}
	}
}

func TestDecayIgnoredWithoutTimestamps(t *testing.T) {
	// A matrix built without timestamps must ignore the tau setting.
	b := ratings.NewBuilder(20, 20)
	for u := 0; u < 20; u++ {
		for i := 0; i < 20; i++ {
			if (u+i)%3 == 0 {
				b.MustAdd(u, i, float64(1+(u*i)%5))
			}
		}
	}
	cfg := smallConfig()
	cfg.Clusters = 4
	cfg.TimeDecayTau = 1000
	mod, err := Train(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mod.decay != nil {
		t.Error("decay must be nil when the matrix has no timestamps")
	}
}

// TestDecayBehaviourOnDriftedData documents the measured (and honest)
// behaviour of the temporal extension at this data scale: decay trades a
// variance cost (it discounts most of an already-sparse matrix) for
// trend tracking, and at ~47k ratings the net effect is approximately
// neutral — it must stay within a narrow band of the no-decay model, not
// blow up, and it must actually change predictions. EXPERIMENTS.md
// records the full τ sweep as a negative result.
func TestDecayBehaviourOnDriftedData(t *testing.T) {
	d := synth.MustGenerate(driftSynth())
	split, err := ratings.MLSplitByTime(d.Matrix, 100, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	mae := func(tau float64) float64 {
		cfg := smallConfig()
		cfg.TimeDecayTau = tau
		mod, err := Train(split.Matrix, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, tg := range split.Targets {
			sum += math.Abs(mod.Predict(tg.User, tg.Item) - tg.Actual)
		}
		return sum / float64(len(split.Targets))
	}
	noDecay := mae(0)
	withDecay := mae(120 * 24 * 3600)
	if withDecay > noDecay+0.05 {
		t.Errorf("time decay catastrophically worse: %.4f (decay) vs %.4f (none)", withDecay, noDecay)
	}
	if math.Abs(withDecay-noDecay) < 1e-12 {
		t.Error("decay had no effect at all — multipliers not applied?")
	}
}

// TestDriftDegradesLateTargets asserts the generator property the
// temporal experiment depends on: under preference drift, a model
// trained once predicts late targets worse than early ones.
func TestDriftDegradesLateTargets(t *testing.T) {
	d := synth.MustGenerate(driftSynth())
	full := d.Matrix
	split, err := ratings.MLSplitByTime(full, 100, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Train(split.Matrix, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	maxT := full.MaxTime()
	minT := maxT
	for u := 0; u < full.NumUsers(); u++ {
		for _, ts := range full.UserRatingTimes(u) {
			if ts < minT {
				minT = ts
			}
		}
	}
	mid := minT + (maxT-minT)/2
	var earlySum, lateSum float64
	var earlyN, lateN int
	for _, tg := range split.Targets {
		fullUser := full.NumUsers() - 50 + (tg.User - 100)
		ts, ok := full.RatingTime(fullUser, tg.Item)
		if !ok {
			t.Fatal("missing target timestamp")
		}
		e := math.Abs(mod.Predict(tg.User, tg.Item) - tg.Actual)
		if ts < mid {
			earlySum += e
			earlyN++
		} else {
			lateSum += e
			lateN++
		}
	}
	if earlyN == 0 || lateN == 0 {
		t.Skip("degenerate time split")
	}
	early, late := earlySum/float64(earlyN), lateSum/float64(lateN)
	if late <= early {
		t.Errorf("late targets (%.4f) not harder than early (%.4f) despite drift", late, early)
	}
}

func TestDecaySurvivesSaveLoadAndUpdates(t *testing.T) {
	d := synth.MustGenerate(driftSynth())
	cfg := smallConfig()
	cfg.TimeDecayTau = 90 * 24 * 3600
	mod, err := Train(d.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next, err := mod.WithUpdates([]RatingUpdate{{User: 0, Item: 1, Value: 5, Time: d.Matrix.MaxTime() + 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if next.decay == nil {
		t.Error("decay lost across WithUpdates")
	}
	if !next.Matrix().HasTimes() {
		t.Error("timestamps lost across WithUpdates")
	}
	if ts, ok := next.Matrix().RatingTime(0, 1); !ok || ts != d.Matrix.MaxTime()+1000 {
		t.Errorf("new rating timestamp = %d,%v", ts, ok)
	}
}
