package core

import (
	"math"
	"sort"
	"sync"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Prediction breaks a fused prediction into the paper's components.
type Prediction struct {
	// SIR, SUR, SUIR are the Eq. 12 components computed over the local
	// matrix; the matching Has* flag reports whether the component had
	// any support.
	SIR, SUR, SUIR          float64
	HasSIR, HasSUR, HasSUIR bool
	// Value is the Eq. 14 fusion, clamped to the rating scale.
	Value float64
	// ItemsUsed and UsersUsed are the local matrix dimensions actually
	// available (≤ M and ≤ K).
	ItemsUsed, UsersUsed int
}

// Predict returns the fused CFSF prediction for (user, item), clamped to
// the training matrix's rating scale. It is safe for concurrent use.
func (mod *Model) Predict(user, item int) float64 {
	return mod.PredictDetailed(user, item).Value
}

// PredictDetailed computes the online phase for one (user, item) pair and
// returns the component breakdown.
func (mod *Model) PredictDetailed(user, item int) Prediction {
	var p Prediction
	if user < 0 || user >= mod.m.NumUsers() || item < 0 || item >= mod.m.NumItems() {
		p.Value = mod.fallback(user, item)
		return p
	}

	// topM is the id-sorted mirror of the top-M neighbourhood, built at
	// train/refresh time, so the merge loops below start immediately: no
	// per-request copy or sort.
	sorted := mod.topM[item]
	users := mod.likeMindedUsers(user)
	p.ItemsUsed = len(sorted)
	p.UsersUsed = len(users)

	p.SIR, p.HasSIR = mod.sirLocal(user, sorted)
	p.SUR, p.HasSUR = mod.surLocal(user, item, users)
	p.SUIR, p.HasSUIR = mod.suirLocal(sorted, mod.topM2[item], users)

	// Eq. 14 with renormalisation over the available components, so a
	// missing component never silently pulls the prediction toward 0.
	wSIR := (1 - mod.cfg.Delta) * (1 - mod.cfg.Lambda)
	wSUR := (1 - mod.cfg.Delta) * mod.cfg.Lambda
	wSUIR := mod.cfg.Delta

	var num, den float64
	if p.HasSIR {
		num += wSIR * p.SIR
		den += wSIR
	}
	if p.HasSUR {
		num += wSUR * p.SUR
		den += wSUR
	}
	if p.HasSUIR {
		num += wSUIR * p.SUIR
		den += wSUIR
	}
	if den == 0 {
		p.Value = mod.fallback(user, item)
		return p
	}
	p.Value = mathx.Clamp(num/den, mod.m.MinRating(), mod.m.MaxRating())
	return p
}

// fallback is the cold-start chain: user mean, then item mean, then the
// global mean.
func (mod *Model) fallback(user, item int) float64 {
	if user >= 0 && user < mod.m.NumUsers() && len(mod.m.UserRatings(user)) > 0 {
		return mod.m.UserMean(user)
	}
	if item >= 0 && item < mod.m.NumItems() && len(mod.m.ItemRatings(item)) > 0 {
		return mod.m.ItemMean(item)
	}
	g := mod.m.GlobalMean()
	if g == 0 {
		return (mod.m.MinRating() + mod.m.MaxRating()) / 2
	}
	return g
}

// forEachLocalRating merges user u's sorted row against the id-sorted
// item neighbourhood, yielding every local-matrix cell of u's row: the
// observed rating where one exists, the Eq. 7 smoothed fill otherwise
// (unless smoothing is disabled, in which case missing cells are
// skipped). w11 is the Eq. 11 weight of the cell, including the
// time-decay multiplier for original ratings. This is the O(M + |row|)
// hot path of the online phase.
func (mod *Model) forEachLocalRating(u int, sorted []mathx.Scored, fn func(k int, r float64, original bool, w11 float64)) {
	row := mod.m.UserRatings(u)
	j := 0
	for k := range sorted {
		idx := sorted[k].Index
		for j < len(row) && row[j].Index < idx {
			j++
		}
		if j < len(row) && row[j].Index == idx {
			fn(k, row[j].Value, true, mod.cfg.OriginalWeight*mod.decayAt(u, j))
			continue
		}
		if mod.cfg.DisableSmoothing {
			continue
		}
		fn(k, mod.sm.Fill(u, int(idx)), false, 1-mod.cfg.OriginalWeight)
	}
}

// sirLocal computes SIR′ (Eq. 12, first line): the w-weighted
// similarity-weighted average of the active user's (smoothed) ratings on
// the top-M similar items. The merge over the id-sorted neighbourhood is
// written out directly (same cell order and arithmetic as
// forEachLocalRating) because closure dispatch dominated the profile of
// the steady-state Predict path.
func (mod *Model) sirLocal(user int, sorted []mathx.Scored) (float64, bool) {
	row := mod.m.UserRatings(user)
	eps := mod.cfg.OriginalWeight
	wSm := 1 - eps
	var decayRow []float64
	if mod.decay != nil {
		decayRow = mod.decay[user]
	}
	var flRow []float64
	var um float64
	if !mod.cfg.DisableSmoothing {
		flRow = mod.sm.FillRow(user)
		um = mod.m.UserMean(user)
	}
	var num, den float64
	j := 0
	for _, it := range sorted {
		idx := it.Index
		for j < len(row) && row[j].Index < idx {
			j++
		}
		var r, w11 float64
		if j < len(row) && row[j].Index == idx {
			r = row[j].Value
			w11 = eps
			if decayRow != nil {
				w11 = eps * decayRow[j]
			}
		} else if flRow == nil {
			continue
		} else {
			r = um
			if f := flRow[idx]; f == f {
				r = um + f
			}
			w11 = wSm
		}
		w := w11 * it.Score
		num += w * r
		den += w
	}
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// surLocal computes SUR′ (Eq. 12, second line): the mean-centred,
// w-weighted average of the like-minded users' (smoothed) ratings on the
// active item, re-anchored at the active user's mean.
func (mod *Model) surLocal(user, item int, users []likeMinded) (float64, bool) {
	var num, den float64
	for _, lm := range users {
		t := int(lm.user)
		r, w11, ok := mod.ratingWithW(t, item)
		if !ok {
			continue
		}
		w := w11 * lm.sim
		num += w * (r - mod.m.UserMean(t))
		den += w
	}
	if den <= 0 {
		return 0, false
	}
	return mod.m.UserMean(user) + num/den, true
}

// suirLocal computes SUIR′ (Eq. 12, third line) with the Eq. 13 pair
// weight: ratings that like-minded users gave to similar items. Like
// sirLocal, the per-neighbour merge is written out directly with the
// user's mean and fill row hoisted out of the K×M inner loop; cell
// order and arithmetic match forEachLocalRating exactly. sq is the
// item's topM2 row: Score² per neighbour, precomputed at build time
// with the same multiply Eq. 13 would do here.
func (mod *Model) suirLocal(sorted []mathx.Scored, sq []float64, users []likeMinded) (float64, bool) {
	eps := mod.cfg.OriginalWeight
	wSm := 1 - eps
	smoothing := !mod.cfg.DisableSmoothing
	sq = sq[:len(sorted)] // one bounds check here instead of one per cell
	var num, den float64
	for _, lm := range users {
		u := int(lm.user)
		sim := lm.sim
		sim2 := sim * sim // Eq. 13's userSim² hoisted out of the M-cell loop
		row := mod.m.UserRatings(u)
		var decayRow []float64
		if mod.decay != nil {
			decayRow = mod.decay[u]
		}
		var flRow []float64
		var um float64
		if smoothing {
			flRow = mod.sm.FillRow(u)
			um = mod.m.UserMean(u)
		}
		j := 0
		if decayRow == nil && flRow != nil {
			// Common-case loop (no time decay, smoothing on): every cell
			// contributes — the GIS keeps only positive item sims and
			// Eq. 10 selection keeps only positive user sims, so the pair
			// weight si·sim/√(si²+sim²) is strictly positive and the d == 0
			// and ps <= 0 guards of the general loop can never fire.
			// Arithmetic is the general loop's exactly (the mul and the
			// sqrt are independent, so fusing them into one expression
			// keeps each operation and its operands unchanged).
			for k, it := range sorted {
				idx := it.Index
				for j < len(row) && row[j].Index < idx {
					j++
				}
				var r, w11 float64
				if j < len(row) && row[j].Index == idx {
					r = row[j].Value
					w11 = eps
				} else {
					r = um
					if f := flRow[idx]; f == f {
						r = um + f
					}
					w11 = wSm
				}
				w := w11 * (it.Score * sim / math.Sqrt(sq[k]+sim2))
				num += w * r
				den += w
			}
			continue
		}
		for k, it := range sorted {
			idx := it.Index
			for j < len(row) && row[j].Index < idx {
				j++
			}
			var r, w11 float64
			if j < len(row) && row[j].Index == idx {
				r = row[j].Value
				w11 = eps
				if decayRow != nil {
					w11 = eps * decayRow[j]
				}
			} else if flRow == nil {
				continue
			} else {
				r = um
				if f := flRow[idx]; f == f {
					r = um + f
				}
				w11 = wSm
			}
			// Eq. 13 written out with both squares precomputed; operations
			// and operand order match pairSim exactly, so the value is
			// bit-identical.
			si := it.Score
			d := math.Sqrt(sq[k] + sim2)
			if d == 0 {
				continue
			}
			ps := si * sim / d
			if ps <= 0 {
				continue
			}
			w := w11 * ps
			num += w * r
			den += w
		}
	}
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// pairSim implements Eq. 13.
func pairSim(itemSim, userSim float64) float64 {
	d := math.Sqrt(itemSim*itemSim + userSim*userSim)
	if d == 0 {
		return 0
	}
	return itemSim * userSim / d
}

// likeMindedUsers returns the active user's top-K neighbours per
// Eq. 10–11, using (and filling) the per-user cache.
func (mod *Model) likeMindedUsers(user int) []likeMinded {
	if !mod.cfg.DisableCache {
		if p := mod.neighborCache[user].Load(); p != nil {
			return *p
		}
	}
	sel := mod.selectLikeMinded(user)
	if !mod.cfg.DisableCache {
		mod.neighborCache[user].Store(&sel)
	}
	return sel
}

// lmScratch is the per-request scratch of one like-minded selection:
// the candidate list, the bounded Eq. 10 top-K heap, and the ranking
// buffer. Instances cycle through lmScratchPool; a scratch is owned
// exclusively by one selectLikeMinded call between Get and Put, holds
// no model state of its own (every field is fully overwritten before
// use), and must never be retained past the call that fetched it.
type lmScratch struct {
	candidates []int
	top        *mathx.TopK
	ranked     []mathx.Scored
}

// lmScratchPool recycles like-minded selection scratch across requests
// and across model generations (the scratch is model-independent).
//
//cfsf:guarded-by sync.Pool — each scratch is handed out to exactly one goroutine at a time; contents carry no cross-request state
var lmScratchPool = sync.Pool{
	New: func() any { return &lmScratch{top: mathx.NewTopK(0)} },
}

// selectLikeMinded builds the candidate set in iCluster order (§IV-E2)
// and scores each candidate with Eq. 10, keeping the top K positive
// similarities. The candidate set is capped at CandidateFactor×K even
// mid-cluster: the last visited cluster contributes only up to the cap
// (members come in ascending user id, so the truncation is
// deterministic), which bounds tail latency on models with one huge
// cluster.
func (mod *Model) selectLikeMinded(user int) []likeMinded {
	sc := lmScratchPool.Get().(*lmScratch)
	candidates := mod.gatherCandidates(user, sc.candidates[:0])

	top := sc.top
	top.Reset(mod.cfg.K)
	for _, cand := range candidates {
		if s := mod.eq10Sim(user, cand); s > 0 {
			top.Push(int32(cand), s)
		}
	}
	scored := top.AppendSorted(sc.ranked[:0])
	out := make([]likeMinded, len(scored))
	for i, s := range scored {
		out[i] = likeMinded{user: s.Index, sim: s.Score}
	}
	// Same oversized-buffer policy as putRecScratch: the candidate list
	// sizes to the user population (all of it under FullUserSearch), so
	// a pooled scratch must not pin a larger model's high-water mark.
	if cap(candidates) > 2*len(candidates) && cap(candidates) > 4*mod.cfg.K {
		candidates = nil
	}
	sc.candidates = candidates[:0:cap(candidates)]
	sc.ranked = scored[:0]
	lmScratchPool.Put(sc)
	return out
}

// gatherCandidates appends user's like-minded candidate set to buf and
// returns it: every other user under FullUserSearch, otherwise cluster
// members in iCluster order, hard-capped at CandidateFactor×K (the last
// cluster visited contributes only up to the cap).
func (mod *Model) gatherCandidates(user int, buf []int) []int {
	if mod.cfg.FullUserSearch {
		for u := 0; u < mod.m.NumUsers(); u++ {
			if u != user {
				buf = append(buf, u)
			}
		}
		return buf
	}
	factor := mod.cfg.CandidateFactor
	if factor <= 0 {
		factor = 4
	}
	want := factor * mod.cfg.K
	for _, c := range mod.ic.Order[user] {
		for _, u := range mod.clusters.Members[c] {
			if u != user {
				buf = append(buf, u)
				if len(buf) == want {
					return buf
				}
			}
		}
	}
	return buf
}

// eq10Sim computes the w-weighted PCC of Eq. 10 between the active user a
// and candidate u, over the items a rated. The candidate side uses
// smoothed ratings with the Eq. 11 weight; the active side uses only its
// observed ratings (f ranges over I{u_a}). Both rows are sorted, so the
// candidate lookup is a single merge pass.
func (mod *Model) eq10Sim(active, cand int) float64 {
	am := mod.m.UserMean(active)
	cm := mod.m.UserMean(cand)
	rowC := mod.m.UserRatings(cand)
	eps := mod.cfg.OriginalWeight
	wSm := 1 - eps
	var decayRow []float64
	if mod.decay != nil {
		decayRow = mod.decay[cand]
	}
	// The candidate's fill-memo row replaces per-cell sm.Fill calls; the
	// addend layout makes rc = cm + fill bit-identical to Fill(cand, i).
	var flRow []float64
	if !mod.cfg.DisableSmoothing {
		flRow = mod.sm.FillRow(cand)
	}
	j := 0
	var num, denA, denC float64
	for _, e := range mod.m.UserRatings(active) {
		for j < len(rowC) && rowC[j].Index < e.Index {
			j++
		}
		var rc, w float64
		if j < len(rowC) && rowC[j].Index == e.Index {
			rc = rowC[j].Value
			w = eps
			if decayRow != nil {
				w = eps * decayRow[j]
			}
		} else if flRow == nil {
			continue
		} else {
			rc = cm
			if f := flRow[e.Index]; f == f {
				rc = cm + f
			}
			w = wSm
		}
		dc := rc - cm
		da := e.Value - am
		num += w * dc * da
		denC += w * w * dc * dc
		denA += da * da
	}
	if denA == 0 || denC == 0 {
		return 0
	}
	return num / (math.Sqrt(denC) * math.Sqrt(denA))
}

// Pair identifies one prediction request in a batch.
type Pair struct {
	User, Item int
}

// PredictBatch predicts every pair in parallel and returns the fused
// values in input order.
func (mod *Model) PredictBatch(pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	parallel.For(len(pairs), mod.cfg.Workers, func(i int) {
		out[i] = mod.Predict(pairs[i].User, pairs[i].Item)
	})
	return out
}

// Recommendation is one ranked item for a user.
type Recommendation struct {
	Item  int
	Score float64
}

// recScratch is the per-request scratch of one Recommend call: the
// per-item score buffer and the exact top-n selector. Same ownership
// rules as lmScratch: exclusive between Get and Put, fully overwritten
// before use, never retained past the call.
type recScratch struct {
	scores []float64
	sel    mathx.TopSelect
	ranked []mathx.Scored
}

//cfsf:guarded-by sync.Pool — each scratch is handed out to exactly one goroutine at a time; contents carry no cross-request state
var recScratchPool = sync.Pool{
	New: func() any { return new(recScratch) },
}

// putRecScratch returns a scratch to the pool, first dropping buffers
// that outgrew the current need by more than 2×: score buffers size to
// the catalogue, so after serving a large model every pooled scratch
// would otherwise pin that high-water mark forever even when later
// (smaller) models need a fraction of it. A buffer within 2× of used is
// kept — steady-state growth never reallocates, only a catalogue shrink
// (a different model in the same process) sheds memory.
func putRecScratch(sc *recScratch, used int) {
	if cap(sc.scores) > 2*used {
		sc.scores = nil
	}
	if cap(sc.ranked) > 2*used {
		sc.ranked = nil
	}
	recScratchPool.Put(sc)
}

// Recommend returns the n items with the highest predicted rating for
// the user, excluding items the user already rated. Ties break by item
// id for determinism.
//
// Contract: invalid input (n <= 0 or a user outside the matrix) returns
// nil; valid input always returns a non-nil slice, possibly empty (every
// unrated item has zero support). Callers can therefore distinguish "bad
// request" from "nothing to recommend" without a separate error value,
// and the HTTP layer renders the empty case as [] rather than null.
//
// The first call for a user runs the exact scan (recommendExact) and
// caches the top-C ranking; subsequent calls on the same or a carried
// model generation serve from the cache — after lazily re-scoring any
// items an Apply dirtied (reccache.go) — and are allocation-free apart
// from the returned slice. Cached and exact paths are bit-identical by
// construction; parity_test.go holds them to that.
func (mod *Model) Recommend(user, n int) []Recommendation {
	if n <= 0 || user < 0 || user >= mod.m.NumUsers() {
		return nil
	}
	capHint := n
	if q := mod.m.NumItems(); capHint > q {
		capHint = q
	}
	return mod.RecommendAppend(make([]Recommendation, 0, capHint), user, n)
}

// RecommendAppend is Recommend writing into caller-owned storage: the
// top-n items are appended to dst and the extended slice returned. On
// invalid input dst is returned unchanged. A caller that reuses dst
// across requests (dst[:0]) makes the warm cached path allocation-free —
// the property the CI benchmark gate holds Recommend to.
func (mod *Model) RecommendAppend(dst []Recommendation, user, n int) []Recommendation {
	if n <= 0 || user < 0 || user >= mod.m.NumUsers() {
		return dst
	}
	cacheCap := 0
	if mod.recCache != nil && user < len(mod.recCache) {
		cacheCap = mod.recCacheCap()
	}
	if cacheCap > 0 {
		if e := mod.recCache[user].Load(); e != nil {
			if len(e.pending) > 0 {
				if r := mod.repairRecEntry(user, e); r != nil {
					mod.recCache[user].Store(r)
					e = r
				} else {
					e = nil // boundary crossed: fall through to the exact scan
				}
			}
			if e != nil && (e.complete || n <= len(e.ranked)) {
				recCacheHits.Add(1)
				return appendRecommendations(dst, e.ranked, n)
			}
		}
		recCacheMisses.Add(1)
	}
	// Exact scan. With the cache enabled, widen the selection to the
	// cache capacity so the stored entry can serve any n up to it.
	want := n
	if cacheCap > want {
		want = cacheCap
	}
	sc := recScratchPool.Get().(*recScratch)
	ranked, offered := mod.recommendExact(user, want, sc)
	if cacheCap > 0 {
		keep := ranked
		if len(keep) > cacheCap {
			keep = keep[:cacheCap]
		}
		mod.recCache[user].Store(&recEntry{
			ranked:   append([]mathx.Scored(nil), keep...),
			complete: offered <= cacheCap,
		})
	}
	dst = appendRecommendations(dst, ranked, n)
	sc.ranked = ranked[:0]
	putRecScratch(sc, mod.m.NumItems())
	return dst
}

// appendRecommendations appends the first n entries of a canonical
// ranking to dst as public Recommendation values.
func appendRecommendations(dst []Recommendation, ranked []mathx.Scored, n int) []Recommendation {
	if n > len(ranked) {
		n = len(ranked)
	}
	for _, e := range ranked[:n] {
		dst = append(dst, Recommendation{Item: int(e.Index), Score: e.Score})
	}
	return dst
}

// recommendExact scores every candidate item for the user and returns
// the top-want ranking in canonical order plus the number of eligible
// candidates offered to the selector. The ranking's backing array
// belongs to sc; callers copy what they keep and return sc to the pool.
//
// Items the user rated and items with no support (no raters at all) are
// skipped before prediction by merging each chunk against the user's
// id-sorted rating row — no rated-set map, no prediction paid for an
// item that can never be recommended. NaN marks skipped slots in the
// score buffer (Predict never returns NaN: its outputs are clamped
// finite values or finite fallbacks), and the exact top-n selection
// over the rest reproduces the full sort's score-desc/id-asc order
// bit for bit.
func (mod *Model) recommendExact(user, want int, sc *recScratch) (ranked []mathx.Scored, offered int) {
	q := mod.m.NumItems()
	if cap(sc.scores) < q {
		sc.scores = make([]float64, q)
	}
	scores := sc.scores[:q]
	row := mod.m.UserRatings(user)
	parallel.ForChunked(q, mod.cfg.Workers, func(lo, hi int) {
		// Position the rated-row cursor at the first entry >= lo; it then
		// advances monotonically through the chunk.
		j := sort.Search(len(row), func(x int) bool { return int(row[x].Index) >= lo })
		for i := lo; i < hi; i++ {
			for j < len(row) && int(row[j].Index) < i {
				j++
			}
			if (j < len(row) && int(row[j].Index) == i) || len(mod.m.ItemRatings(i)) == 0 {
				scores[i] = math.NaN()
				continue
			}
			scores[i] = mod.Predict(user, i)
		}
	})
	if want > q {
		want = q
	}
	sel := &sc.sel
	sel.Reset(want)
	for i := 0; i < q; i++ {
		if s := scores[i]; s == s {
			sel.Offer(int32(i), s)
			offered++
		}
	}
	return sel.AppendRanked(sc.ranked[:0]), offered
}

// EvalOn predicts every target of a split and returns predictions in
// target order (a convenience for the evaluation harness and tests).
func (mod *Model) EvalOn(targets []ratings.Target) []float64 {
	pairs := make([]Pair, len(targets))
	for i, t := range targets {
		pairs[i] = Pair{t.User, t.Item}
	}
	return mod.PredictBatch(pairs)
}
