package core

import (
	"math"
	"sort"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Prediction breaks a fused prediction into the paper's components.
type Prediction struct {
	// SIR, SUR, SUIR are the Eq. 12 components computed over the local
	// matrix; the matching Has* flag reports whether the component had
	// any support.
	SIR, SUR, SUIR          float64
	HasSIR, HasSUR, HasSUIR bool
	// Value is the Eq. 14 fusion, clamped to the rating scale.
	Value float64
	// ItemsUsed and UsersUsed are the local matrix dimensions actually
	// available (≤ M and ≤ K).
	ItemsUsed, UsersUsed int
}

// Predict returns the fused CFSF prediction for (user, item), clamped to
// the training matrix's rating scale. It is safe for concurrent use.
func (mod *Model) Predict(user, item int) float64 {
	return mod.PredictDetailed(user, item).Value
}

// PredictDetailed computes the online phase for one (user, item) pair and
// returns the component breakdown.
func (mod *Model) PredictDetailed(user, item int) Prediction {
	var p Prediction
	if user < 0 || user >= mod.m.NumUsers() || item < 0 || item >= mod.m.NumItems() {
		p.Value = mod.fallback(user, item)
		return p
	}

	items := mod.topItems(item)
	users := mod.likeMindedUsers(user)
	p.ItemsUsed = len(items)
	p.UsersUsed = len(users)

	// The local-matrix sums iterate sorted user rows merged against the
	// item neighbourhood, so sort the top-M once by item id here.
	sorted := make([]mathx.Scored, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Index < sorted[b].Index })

	p.SIR, p.HasSIR = mod.sirLocal(user, sorted)
	p.SUR, p.HasSUR = mod.surLocal(user, item, users)
	p.SUIR, p.HasSUIR = mod.suirLocal(sorted, users)

	// Eq. 14 with renormalisation over the available components, so a
	// missing component never silently pulls the prediction toward 0.
	wSIR := (1 - mod.cfg.Delta) * (1 - mod.cfg.Lambda)
	wSUR := (1 - mod.cfg.Delta) * mod.cfg.Lambda
	wSUIR := mod.cfg.Delta

	var num, den float64
	if p.HasSIR {
		num += wSIR * p.SIR
		den += wSIR
	}
	if p.HasSUR {
		num += wSUR * p.SUR
		den += wSUR
	}
	if p.HasSUIR {
		num += wSUIR * p.SUIR
		den += wSUIR
	}
	if den == 0 {
		p.Value = mod.fallback(user, item)
		return p
	}
	p.Value = mathx.Clamp(num/den, mod.m.MinRating(), mod.m.MaxRating())
	return p
}

// fallback is the cold-start chain: user mean, then item mean, then the
// global mean.
func (mod *Model) fallback(user, item int) float64 {
	if user >= 0 && user < mod.m.NumUsers() && len(mod.m.UserRatings(user)) > 0 {
		return mod.m.UserMean(user)
	}
	if item >= 0 && item < mod.m.NumItems() && len(mod.m.ItemRatings(item)) > 0 {
		return mod.m.ItemMean(item)
	}
	g := mod.m.GlobalMean()
	if g == 0 {
		return (mod.m.MinRating() + mod.m.MaxRating()) / 2
	}
	return g
}

// forEachLocalRating merges user u's sorted row against the id-sorted
// item neighbourhood, yielding every local-matrix cell of u's row: the
// observed rating where one exists, the Eq. 7 smoothed fill otherwise
// (unless smoothing is disabled, in which case missing cells are
// skipped). w11 is the Eq. 11 weight of the cell, including the
// time-decay multiplier for original ratings. This is the O(M + |row|)
// hot path of the online phase.
func (mod *Model) forEachLocalRating(u int, sorted []mathx.Scored, fn func(k int, r float64, original bool, w11 float64)) {
	row := mod.m.UserRatings(u)
	j := 0
	for k := range sorted {
		idx := sorted[k].Index
		for j < len(row) && row[j].Index < idx {
			j++
		}
		if j < len(row) && row[j].Index == idx {
			fn(k, row[j].Value, true, mod.cfg.OriginalWeight*mod.decayAt(u, j))
			continue
		}
		if mod.cfg.DisableSmoothing {
			continue
		}
		fn(k, mod.sm.Fill(u, int(idx)), false, 1-mod.cfg.OriginalWeight)
	}
}

// sirLocal computes SIR′ (Eq. 12, first line): the w-weighted
// similarity-weighted average of the active user's (smoothed) ratings on
// the top-M similar items.
func (mod *Model) sirLocal(user int, sorted []mathx.Scored) (float64, bool) {
	var num, den float64
	mod.forEachLocalRating(user, sorted, func(k int, r float64, orig bool, w11 float64) {
		w := w11 * sorted[k].Score
		num += w * r
		den += w
	})
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// surLocal computes SUR′ (Eq. 12, second line): the mean-centred,
// w-weighted average of the like-minded users' (smoothed) ratings on the
// active item, re-anchored at the active user's mean.
func (mod *Model) surLocal(user, item int, users []likeMinded) (float64, bool) {
	var num, den float64
	for _, lm := range users {
		t := int(lm.user)
		r, w11, ok := mod.ratingWithW(t, item)
		if !ok {
			continue
		}
		w := w11 * lm.sim
		num += w * (r - mod.m.UserMean(t))
		den += w
	}
	if den <= 0 {
		return 0, false
	}
	return mod.m.UserMean(user) + num/den, true
}

// suirLocal computes SUIR′ (Eq. 12, third line) with the Eq. 13 pair
// weight: ratings that like-minded users gave to similar items.
func (mod *Model) suirLocal(sorted []mathx.Scored, users []likeMinded) (float64, bool) {
	var num, den float64
	for _, lm := range users {
		sim := lm.sim
		mod.forEachLocalRating(int(lm.user), sorted, func(k int, r float64, orig bool, w11 float64) {
			ps := pairSim(sorted[k].Score, sim)
			if ps <= 0 {
				return
			}
			w := w11 * ps
			num += w * r
			den += w
		})
	}
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// pairSim implements Eq. 13.
func pairSim(itemSim, userSim float64) float64 {
	d := math.Sqrt(itemSim*itemSim + userSim*userSim)
	if d == 0 {
		return 0
	}
	return itemSim * userSim / d
}

// likeMindedUsers returns the active user's top-K neighbours per
// Eq. 10–11, using (and filling) the per-user cache.
func (mod *Model) likeMindedUsers(user int) []likeMinded {
	if !mod.cfg.DisableCache {
		if p := mod.neighborCache[user].Load(); p != nil {
			return *p
		}
	}
	sel := mod.selectLikeMinded(user)
	if !mod.cfg.DisableCache {
		mod.neighborCache[user].Store(&sel)
	}
	return sel
}

// selectLikeMinded builds the candidate set in iCluster order (§IV-E2)
// and scores each candidate with Eq. 10, keeping the top K positive
// similarities.
func (mod *Model) selectLikeMinded(user int) []likeMinded {
	var candidates []int
	if mod.cfg.FullUserSearch {
		candidates = make([]int, 0, mod.m.NumUsers()-1)
		for u := 0; u < mod.m.NumUsers(); u++ {
			if u != user {
				candidates = append(candidates, u)
			}
		}
	} else {
		factor := mod.cfg.CandidateFactor
		if factor <= 0 {
			factor = 4
		}
		want := factor * mod.cfg.K
		for _, c := range mod.ic.Order[user] {
			for _, u := range mod.clusters.Members[c] {
				if u != user {
					candidates = append(candidates, u)
				}
			}
			if len(candidates) >= want {
				break
			}
		}
	}

	top := mathx.NewTopK(mod.cfg.K)
	for _, cand := range candidates {
		if s := mod.eq10Sim(user, cand); s > 0 {
			top.Push(int32(cand), s)
		}
	}
	scored := top.Sorted()
	out := make([]likeMinded, len(scored))
	for i, s := range scored {
		out[i] = likeMinded{user: s.Index, sim: s.Score}
	}
	return out
}

// eq10Sim computes the w-weighted PCC of Eq. 10 between the active user a
// and candidate u, over the items a rated. The candidate side uses
// smoothed ratings with the Eq. 11 weight; the active side uses only its
// observed ratings (f ranges over I{u_a}). Both rows are sorted, so the
// candidate lookup is a single merge pass.
func (mod *Model) eq10Sim(active, cand int) float64 {
	am := mod.m.UserMean(active)
	cm := mod.m.UserMean(cand)
	rowC := mod.m.UserRatings(cand)
	j := 0
	var num, denA, denC float64
	for _, e := range mod.m.UserRatings(active) {
		for j < len(rowC) && rowC[j].Index < e.Index {
			j++
		}
		var rc, w float64
		if j < len(rowC) && rowC[j].Index == e.Index {
			rc = rowC[j].Value
			w = mod.cfg.OriginalWeight * mod.decayAt(cand, j)
		} else if mod.cfg.DisableSmoothing {
			continue
		} else {
			rc = mod.sm.Fill(cand, int(e.Index))
			w = 1 - mod.cfg.OriginalWeight
		}
		dc := rc - cm
		da := e.Value - am
		num += w * dc * da
		denC += w * w * dc * dc
		denA += da * da
	}
	if denA == 0 || denC == 0 {
		return 0
	}
	return num / (math.Sqrt(denC) * math.Sqrt(denA))
}

// Pair identifies one prediction request in a batch.
type Pair struct {
	User, Item int
}

// PredictBatch predicts every pair in parallel and returns the fused
// values in input order.
func (mod *Model) PredictBatch(pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	parallel.For(len(pairs), mod.cfg.Workers, func(i int) {
		out[i] = mod.Predict(pairs[i].User, pairs[i].Item)
	})
	return out
}

// Recommendation is one ranked item for a user.
type Recommendation struct {
	Item  int
	Score float64
}

// Recommend returns the n items with the highest predicted rating for
// the user, excluding items the user already rated. Ties break by item
// id for determinism.
func (mod *Model) Recommend(user, n int) []Recommendation {
	if n <= 0 || user < 0 || user >= mod.m.NumUsers() {
		return nil
	}
	rated := make(map[int]bool, len(mod.m.UserRatings(user)))
	for _, e := range mod.m.UserRatings(user) {
		rated[int(e.Index)] = true
	}
	type cand struct {
		item  int
		score float64
	}
	q := mod.m.NumItems()
	cands := make([]cand, q)
	parallel.For(q, mod.cfg.Workers, func(i int) {
		if rated[i] || len(mod.m.ItemRatings(i)) == 0 {
			cands[i] = cand{i, math.Inf(-1)}
			return
		}
		cands[i] = cand{i, mod.Predict(user, i)}
	})
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].item < cands[b].item
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]Recommendation, 0, n)
	for _, c := range cands[:n] {
		if math.IsInf(c.score, -1) {
			break
		}
		out = append(out, Recommendation{Item: c.item, Score: c.score})
	}
	return out
}

// EvalOn predicts every target of a split and returns predictions in
// target order (a convenience for the evaluation harness and tests).
func (mod *Model) EvalOn(targets []ratings.Target) []float64 {
	pairs := make([]Pair, len(targets))
	for i, t := range targets {
		pairs[i] = Pair{t.User, t.Item}
	}
	return mod.PredictBatch(pairs)
}
