package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cfsf/internal/ratings"
	"cfsf/internal/smoothing"
)

// withUpdatesIncremental is the shard-local refresh behind
// ShardedModel.Apply. It produces the same model WithUpdates would —
// bit-for-bit, including every floating-point aggregate — but rebuilds
// only the structures a batch can actually invalidate:
//
//   - changed users' matrix rows and changed items' columns (the rest of
//     the immutable matrix is shared, not re-sorted);
//   - GIS neighbour lists of the changed items (same Refresh call the
//     monolithic path makes);
//   - cluster statistics of the affected shards (each changed user's old
//     and new cluster);
//   - smoothing deviations of the affected shards plus the global
//     deviations of every item in a changed user's row (a new rating
//     moves the user's mean, which shifts the whole row's centred
//     values);
//   - iCluster entries for the affected shards (re-sorted per user) and
//     full rankings for the changed users themselves.
//
// ok is false when the batch cannot be applied incrementally and the
// caller must fall back to the full WithUpdates pass: under time decay
// (the recency multipliers depend on the global newest timestamp, so any
// timed update dirties every shard) and on a times-transition (first
// timed update into an untimed matrix).
//
//cfsf:wallclock-ok refresh durations recorded in TrainStats only; no clock value reaches predictions or replayed state
func (mod *Model) withUpdatesIncremental(updates []RatingUpdate) (next *Model, ok bool, err error) {
	if len(updates) == 0 {
		return mod, true, nil
	}
	if mod.decay != nil {
		return nil, false, nil // time decay: every shard's weights change
	}
	start := time.Now()

	ups := make([]ratings.Upsert, len(updates))
	changedUsers := map[int]bool{}
	changedItems := map[int]bool{}
	for k, up := range updates {
		if up.User < 0 || up.Item < 0 {
			return nil, false, fmt.Errorf("cfsf: negative id in update (%d,%d)", up.User, up.Item)
		}
		ups[k] = ratings.Upsert{User: up.User, Item: up.Item, Value: up.Value, Time: up.Time}
		changedUsers[up.User] = true
		changedItems[up.Item] = true
	}

	m, mok, err := mod.m.Upserted(ups)
	if err != nil {
		return nil, false, err
	}
	if !mok {
		return nil, false, nil // times transition: full rebuild required
	}

	// Sorted for the same reason as WithUpdates: the refresh passes must
	// see the changed sets in a fixed order or replay diverges.
	itemList := make([]int, 0, len(changedItems))
	for i := range changedItems {
		itemList = append(itemList, i)
	}
	sort.Ints(itemList)
	userList := make([]int, 0, len(changedUsers))
	for u := range changedUsers {
		userList = append(userList, u)
	}
	sort.Ints(userList)

	out := &Model{cfg: mod.cfg, m: m}

	t := time.Now()
	out.gis = mod.gis.Refresh(m, itemList, mod.gis.Options())
	out.stats.GISDuration = time.Since(t)
	out.stats.GISNeighbors = out.gis.TotalNeighbors()

	t = time.Now()
	cl, affected := mod.clusters.RefreshUsers(m, userList)
	out.clusters = cl
	out.stats.ClusterDuration = time.Since(t)
	out.stats.ClusterIters = 0 // no K-means pass ran

	// decay is nil by the guard above, and stays nil: Upserted preserves
	// HasTimes, so buildDecay would produce nil here too.

	affItems := map[int]bool{}
	for u := range changedUsers {
		for _, e := range m.UserRatings(u) {
			affItems[int(e.Index)] = true
		}
	}

	t = time.Now()
	out.sm = mod.sm.Refresh(m, cl, affected, affItems, mod.cfg.Workers)
	out.stats.SmoothDuration = time.Since(t)

	t = time.Now()
	out.ic = smoothing.RefreshICluster(mod.ic, out.sm, affected, changedUsers, mod.cfg.Workers)
	out.stats.IClusterDuration = time.Since(t)

	out.neighborCache = make([]atomic.Pointer[[]likeMinded], m.NumUsers())
	out.initRecCache()
	out.buildTopM(mod)
	// Carry warm recommendation-cache entries onto the new generation
	// where the copy-on-write sharing above proves them still exact
	// (reccache.go). Must run after buildTopM: the dirty-item derivation
	// compares the mirrors.
	out.carryRecCache(mod, userList, itemList)
	out.stats.Incremental = true
	out.stats.UpdatesApplied = len(updates)
	out.stats.TotalDuration = time.Since(start)
	return out, true, nil
}
