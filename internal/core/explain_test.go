package core

import (
	"math"
	"strings"
	"testing"
)

func TestExplainWeightsSumToOne(t *testing.T) {
	mod, _ := trainSmall(t)
	ex := mod.Explain(2, 9, 0)
	if len(ex.ItemEvidence) == 0 && len(ex.UserEvidence) == 0 {
		t.Skip("no evidence for this cell")
	}
	var itemSum, userSum float64
	for _, e := range ex.ItemEvidence {
		if e.Weight < 0 {
			t.Fatalf("negative item weight %g", e.Weight)
		}
		itemSum += e.Weight
	}
	for _, e := range ex.UserEvidence {
		if e.Weight < 0 {
			t.Fatalf("negative user weight %g", e.Weight)
		}
		userSum += e.Weight
	}
	if len(ex.ItemEvidence) > 0 && math.Abs(itemSum-1) > 1e-9 {
		t.Errorf("item weights sum to %g, want 1", itemSum)
	}
	if len(ex.UserEvidence) > 0 && math.Abs(userSum-1) > 1e-9 {
		t.Errorf("user weights sum to %g, want 1", userSum)
	}
}

func TestExplainSortedAndTruncated(t *testing.T) {
	mod, _ := trainSmall(t)
	ex := mod.Explain(2, 9, 3)
	if len(ex.ItemEvidence) > 3 || len(ex.UserEvidence) > 3 {
		t.Fatalf("truncation failed: %d items, %d users", len(ex.ItemEvidence), len(ex.UserEvidence))
	}
	for i := 1; i < len(ex.ItemEvidence); i++ {
		if ex.ItemEvidence[i-1].Weight < ex.ItemEvidence[i].Weight {
			t.Fatal("item evidence not sorted by weight")
		}
	}
	for i := 1; i < len(ex.UserEvidence); i++ {
		if ex.UserEvidence[i-1].Weight < ex.UserEvidence[i].Weight {
			t.Fatal("user evidence not sorted by weight")
		}
	}
}

func TestExplainMatchesPredict(t *testing.T) {
	mod, _ := trainSmall(t)
	for u := 0; u < 10; u++ {
		ex := mod.Explain(u, u+3, 5)
		if got := mod.Predict(u, u+3); got != ex.Prediction.Value {
			t.Fatalf("Explain prediction %g != Predict %g", ex.Prediction.Value, got)
		}
	}
}

// TestExplainReconstructsSUR verifies the evidence is the actual SUR′
// arithmetic: Σ w_norm·(r − ū_t) + ū_b must equal the component.
func TestExplainReconstructsSUR(t *testing.T) {
	mod, _ := trainSmall(t)
	found := false
	for u := 0; u < 20 && !found; u++ {
		for i := 0; i < 20; i++ {
			ex := mod.Explain(u, i, 0)
			if !ex.Prediction.HasSUR || len(ex.UserEvidence) == 0 {
				continue
			}
			found = true
			var sum float64
			for _, e := range ex.UserEvidence {
				sum += e.Weight * (e.Rating - mod.m.UserMean(e.User))
			}
			want := mod.m.UserMean(u) + sum
			if math.Abs(want-ex.Prediction.SUR) > 1e-9 {
				t.Fatalf("evidence reconstructs SUR'=%g, component says %g", want, ex.Prediction.SUR)
			}
			break
		}
	}
	if !found {
		t.Skip("no SUR evidence found")
	}
}

// TestExplainReconstructsSIR does the same for the item side.
func TestExplainReconstructsSIR(t *testing.T) {
	mod, _ := trainSmall(t)
	ex := mod.Explain(1, 4, 0)
	if !ex.Prediction.HasSIR || len(ex.ItemEvidence) == 0 {
		t.Skip("no SIR evidence")
	}
	var sum float64
	for _, e := range ex.ItemEvidence {
		sum += e.Weight * e.Rating
	}
	if math.Abs(sum-ex.Prediction.SIR) > 1e-9 {
		t.Errorf("evidence reconstructs SIR'=%g, component says %g", sum, ex.Prediction.SIR)
	}
}

func TestExplainOutOfRange(t *testing.T) {
	mod, _ := trainSmall(t)
	ex := mod.Explain(-1, 0, 5)
	if len(ex.ItemEvidence) != 0 || len(ex.UserEvidence) != 0 {
		t.Error("out-of-range explain must carry no evidence")
	}
}

func TestExplanationString(t *testing.T) {
	mod, _ := trainSmall(t)
	s := mod.Explain(2, 9, 2).String()
	if !strings.Contains(s, "predict(user=2, item=9)") {
		t.Errorf("missing header:\n%s", s)
	}
	if !strings.Contains(s, "observed") && !strings.Contains(s, "smoothed") {
		t.Errorf("missing provenance:\n%s", s)
	}
}
