package core

import (
	"math"
	"slices"
	"sync/atomic"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Per-user recommendation cache. Recommend's exact scan prices every
// catalogue item (milliseconds); steady-state serving repeats it for the
// same user against a model that an Apply changed only at the margin. The
// cache keeps each served user's top-C ranking and carries it across
// Apply generations, so a warm Recommend is a bounds check plus a copy.
//
// The carry is exact, not approximate: an entry survives an Apply only
// when the copy-on-write sharing of the incremental refresh *proves* the
// user's scores unchanged outside the batch's changed-item set, and those
// items are queued on the entry for lazy re-scoring (repair) at the next
// read. Anything the proof cannot cover — the user's own row, their
// neighbourhood, time decay, a monolithic rebuild — invalidates the entry
// outright, so the cache is only ever bit-identical to the exact path or
// cold, never stale. DESIGN.md §10 states the invariant in full.

// defaultRecCacheSize is the per-user entry capacity when
// Config.RecommendCacheSize is 0: enough to serve the HTTP layer's
// n ≤ 100 ceiling from a complete cached prefix.
const defaultRecCacheSize = 128

// recEntry is one user's cached ranking. Entries are immutable once
// published through the recCache slot; repair builds a replacement.
type recEntry struct {
	// ranked is the top-C prefix of the user's full candidate ranking in
	// canonical order (score desc, id asc), scored on the model
	// generation the entry was built or last repaired against.
	ranked []mathx.Scored //cfsf:cow entries are swapped whole through the recCache slot; repair builds a replacement
	// complete reports that ranked holds *every* eligible item (fewer
	// candidates than capacity), so any n can be served from it.
	complete bool
	// pending is the sorted set of item ids whose scores the carry
	// proofs could not pin since the entry was last scored. A read
	// re-scores exactly these before serving. nil when clean.
	pending []int32 //cfsf:cow same discipline as ranked
}

// recCacheCap returns the per-user entry capacity: the configured size,
// defaulted, with negative values disabling the cache entirely.
func (mod *Model) recCacheCap() int {
	switch c := mod.cfg.RecommendCacheSize; {
	case c == 0:
		return defaultRecCacheSize
	case c < 0:
		return 0
	default:
		return c
	}
}

// initRecCache allocates the (cold) per-user cache slots.
//
//cfsf:init-only called by Train, Load, WithUpdates and the shard paths on a model that has not been published yet
func (mod *Model) initRecCache() {
	if mod.recCacheCap() > 0 {
		mod.recCache = make([]atomic.Pointer[recEntry], mod.m.NumUsers())
	}
}

// Cache effectiveness counters, process-wide (the cache rides model
// generations, so per-model counters would reset on every Apply). They
// feed /stats and /metrics; none of them influences model state, so the
// replay guarantee is untouched.
var (
	recCacheHits            atomic.Uint64
	recCacheMisses          atomic.Uint64
	recCacheRepairs         atomic.Uint64
	recCacheRepairFallbacks atomic.Uint64
	recCacheCarried         atomic.Uint64
	recCacheInvalidated     atomic.Uint64
)

// RecCacheStats is a snapshot of the process-wide recommendation-cache
// counters.
type RecCacheStats struct {
	// Hits counts Recommend calls served from a cached entry (including
	// ones that repaired the entry first); Misses counts calls that ran
	// the exact scan with the cache enabled.
	Hits, Misses uint64
	// Repairs counts entries healed in place by re-scoring their pending
	// items; RepairFallbacks counts repairs abandoned because a repaired
	// score crossed the cached cut-off (the read then re-scans exactly).
	Repairs, RepairFallbacks uint64
	// Carried counts entries that survived an Apply via the carry proof;
	// Invalidated counts entries an Apply dropped.
	Carried, Invalidated uint64
}

// ReadRecCacheStats returns the current cache counters.
func ReadRecCacheStats() RecCacheStats {
	return RecCacheStats{
		Hits:            recCacheHits.Load(),
		Misses:          recCacheMisses.Load(),
		Repairs:         recCacheRepairs.Load(),
		RepairFallbacks: recCacheRepairFallbacks.Load(),
		Carried:         recCacheCarried.Load(),
		Invalidated:     recCacheInvalidated.Load(),
	}
}

// sameFloats reports whether two float64 slices are the same array
// region (immutable data ⇒ aliased slices are bit-identical).
func sameFloats(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// sameScored is sameFloats for Scored rows (matrix rows, topM mirrors).
func sameScored(a, b []mathx.Scored) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// changedFillItems returns the sorted item ids (over the shared
// catalogue prefix) where two fill rows differ bitwise, nil when they
// are identical. Bit comparison rather than == so the rows' NaN
// sentinels compare equal to themselves; aliased rows (Refresh shared
// the array) short-circuit to nil. Ids beyond the shorter row are new
// items, which the carry marks dirty globally.
func changedFillItems(a, b []float64) []int32 {
	n := min(len(a), len(b))
	if n > 0 && &a[0] == &b[0] {
		return nil
	}
	var out []int32
	for i := 0; i < n; i++ {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			out = append(out, int32(i))
		}
	}
	return out
}

// recCarry is the per-apply context of one cache carry: the two model
// generations and the precomputed per-cluster fill-row deltas. The fill
// comparison is by content and per cell, not by row pointer: a rating
// change shifts the rater's mean, which perturbs the *global* item
// deviations, and those leak into every cluster's fill row at items the
// cluster does not cover itself — so whole-row comparison (by pointer
// or value) would invalidate nearly every entry on every apply, while
// the actual damage is a handful of columns.
type recCarry struct {
	prev, next *Model
	// fillChanged[c] is the sorted set of item ids where cluster c's
	// Eq. 7 fill row differs between the generations; nil when it is
	// bit-identical. Only meaningful when fillOK.
	fillChanged [][]int32
	// fillDirtyAll is the union of all fillChanged sets: every item at
	// which any cluster's fill value moved.
	fillDirtyAll []int32
	// fillOK reports the fill comparison was possible (smoothing off, or
	// the cluster counts match). When false no user is provably clean.
	fillOK bool
}

func newRecCarry(prev, next *Model) *recCarry {
	cc := &recCarry{prev: prev, next: next}
	if next.cfg.DisableSmoothing {
		cc.fillOK = true // no fill reads anywhere in the predict path
		return cc
	}
	if prev.sm.NumClusters() != next.sm.NumClusters() {
		return cc
	}
	k := next.sm.NumClusters()
	cc.fillOK = true
	cc.fillChanged = make([][]int32, k)
	parallel.For(k, next.cfg.Workers, func(c int) {
		cc.fillChanged[c] = changedFillItems(prev.sm.ClusterFillRow(c), next.sm.ClusterFillRow(c))
	})
	for _, ch := range cc.fillChanged {
		cc.fillDirtyAll = mergeSortedIDs(cc.fillDirtyAll, ch)
	}
	return cc
}

// fillDirtyExpanded closes fillDirtyAll under the predict path's fill
// reads: a changed fill value at item i moves s(u, j) when j = i (SUR′
// reads a neighbour's fill at the active item) or when i sits in j's
// top-M neighbourhood (SIR′/SUIR′ read fills across topM[j]). The
// result is the sorted set of items whose score may have moved for ANY
// user through smoothing alone — a superset per user, computed once per
// apply with one O(Q·M) sweep over the shared topM mirrors.
func (cc *recCarry) fillDirtyExpanded() []int32 {
	if len(cc.fillDirtyAll) == 0 {
		return nil
	}
	next := cc.next
	q := next.m.NumItems()
	mark := make([]bool, q)
	for _, i := range cc.fillDirtyAll {
		if int(i) < q {
			mark[i] = true
		}
	}
	dirty := make([]bool, q)
	parallel.ForChunked(q, next.cfg.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if mark[j] {
				dirty[j] = true
				continue
			}
			for _, it := range next.topM[j] {
				if mark[it.Index] {
					dirty[j] = true
					break
				}
			}
		}
	})
	out := make([]int32, 0, len(cc.fillDirtyAll))
	for j := range dirty {
		if dirty[j] {
			out = append(out, int32(j))
		}
	}
	return out
}

// userClean reports that user u's own prediction inputs are provably
// unchanged between the generations: the rating row is the same backing
// array (Upserted shares untouched rows), the user mean is bit-equal,
// and — when smoothing is on — the user kept their cluster, so their
// fill row can differ only at fillChanged columns, all of which the
// carry queues as pending items.
func (cc *recCarry) userClean(u int) bool {
	prev, next := cc.prev, cc.next
	if u >= prev.m.NumUsers() || u >= next.m.NumUsers() {
		return false
	}
	ra := prev.m.UserRatings(u)
	rb := next.m.UserRatings(u)
	if len(ra) != len(rb) || (len(ra) > 0 && &ra[0] != &rb[0]) {
		return false
	}
	if prev.m.UserMean(u) != next.m.UserMean(u) {
		return false
	}
	if !next.cfg.DisableSmoothing {
		if !cc.fillOK || prev.sm.Cluster(u) != next.sm.Cluster(u) {
			return false
		}
	}
	return true
}

// intersectsRatedRow reports whether any of the sorted item ids appears
// in the sorted rating row (one merge pass).
func intersectsRatedRow(ids []int32, row []ratings.Entry) bool {
	j := 0
	for _, id := range ids {
		for j < len(row) && row[j].Index < id {
			j++
		}
		if j < len(row) && row[j].Index == id {
			return true
		}
	}
	return false
}

// selectionClean reports that user u's Eq. 10 like-minded selection is
// provably identical on both generations: the candidate walks produce
// the same id sequence, every candidate is itself clean (row, mean,
// cluster unchanged), and no candidate's cluster changed a fill value
// at an item u rated — Eq. 10 reads the candidate's fill exactly at
// I{u}, so under these checks every similarity, and therefore the
// top-K heap's outcome, is bit-identical. bufA/bufB are reusable
// scratch; the possibly-grown buffers are returned for the next call.
func (cc *recCarry) selectionClean(u int, bufA, bufB []int) (clean bool, a, b []int) {
	a = cc.prev.gatherCandidates(u, bufA[:0])
	b = cc.next.gatherCandidates(u, bufB[:0])
	if len(a) != len(b) {
		return false, a, b
	}
	for i := range a {
		if a[i] != b[i] {
			return false, a, b
		}
	}
	rowU := cc.next.m.UserRatings(u)
	for _, c := range a {
		if !cc.userClean(c) {
			return false, a, b
		}
		if len(cc.fillChanged) > 0 {
			if ch := cc.fillChanged[cc.next.sm.Cluster(c)]; len(ch) > 0 && intersectsRatedRow(ch, rowU) {
				return false, a, b
			}
		}
	}
	return true, a, b
}

// recDirtyItems returns the sorted set of item ids whose Recommend score
// can differ between prev and next for a *clean* user: the batch's
// changed items (new columns, new support, new item means, refreshed GIS
// lists) plus any item whose id-sorted top-M mirror was rebuilt rather
// than shared (a defensive superset — buildTopM only re-derives rows
// whose GIS prefix changed) plus every item beyond the old catalogue.
func recDirtyItems(prev, next *Model, itemList []int) []int32 {
	oldQ, newQ := prev.m.NumItems(), next.m.NumItems()
	dirty := make([]int32, 0, len(itemList)+(newQ-oldQ)+8)
	for _, i := range itemList {
		dirty = append(dirty, int32(i))
	}
	shared := oldQ
	if newQ < shared {
		shared = newQ
	}
	for j := 0; j < shared; j++ {
		if !sameScored(prev.topM[j], next.topM[j]) || !sameFloats(prev.topM2[j], next.topM2[j]) {
			dirty = append(dirty, int32(j))
		}
	}
	for j := oldQ; j < newQ; j++ {
		dirty = append(dirty, int32(j))
	}
	slices.Sort(dirty)
	return slices.Compact(dirty)
}

// mergeSortedIDs returns the sorted union of two sorted id sets.
func mergeSortedIDs(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// carryRecCache moves prev's cache entries onto next where the
// copy-on-write proofs allow it. userList and itemList are the apply's
// sorted changed-user and changed-item sets (the same lists the refresh
// passes consume). A changed user's entry is dropped outright; an
// unchanged user keeps their entry — with the apply's dirty items queued
// for lazy repair — iff the user and their entire candidate set are
// clean. Everything about the decision is pointer/value comparison over
// immutable structures, so the walk is cheap (O(candidates) per entry)
// and deterministic.
//
// Soundness: for a user who passes the checks, every Predict input —
// their row and mean; the candidate walk, every candidate's row, mean
// and the fill cells Eq. 10 reads (hence the selection); the rating
// scale; the decay (nil on this path) — is bit-identical on prev and
// next, so s(u, j) can change only through the item side: topM/topM2
// rows, item columns, item means, eligibility (rated/zero-support), or
// a changed fill cell reaching j's local matrix. The first four are
// pinned outside recDirtyItems; the last outside fillDirtyExpanded.
//
//cfsf:init-only called on a model that has not been published yet
func (next *Model) carryRecCache(prev *Model, userList, itemList []int) {
	if next.recCacheCap() <= 0 || next.recCache == nil || prev.recCache == nil {
		return
	}
	if prev.decay != nil || next.decay != nil {
		return // recency weights: nothing is provably stable
	}
	if prev.m.MinRating() != next.m.MinRating() || prev.m.MaxRating() != next.m.MaxRating() {
		return
	}
	cc := newRecCarry(prev, next)
	dirty := mergeSortedIDs(recDirtyItems(prev, next, itemList), cc.fillDirtyExpanded())
	n := len(prev.recCache)
	if n > len(next.recCache) {
		n = len(next.recCache)
	}
	parallel.ForChunked(n, next.cfg.Workers, func(lo, hi int) {
		var bufA, bufB []int
		for u := lo; u < hi; u++ {
			e := prev.recCache[u].Load()
			if e == nil {
				continue
			}
			if _, isChanged := slices.BinarySearch(userList, u); isChanged || !cc.userClean(u) {
				recCacheInvalidated.Add(1)
				continue
			}
			var ok bool
			ok, bufA, bufB = cc.selectionClean(u, bufA, bufB)
			if !ok {
				recCacheInvalidated.Add(1)
				continue
			}
			carried := e
			if pending := mergeSortedIDs(e.pending, dirty); len(pending) > 0 {
				carried = &recEntry{ranked: e.ranked, complete: e.complete, pending: pending}
			}
			next.recCache[u].Store(carried)
			recCacheCarried.Add(1)
		}
	})
}

// repairRecEntry heals a carried entry against the current model by
// re-scoring exactly its pending items. It returns the repaired entry,
// or nil when the repair cannot prove the cached ranking's boundary held
// (a repaired score crossed the cached cut-off) and the caller must run
// the exact scan.
//
// Exactness: for every item outside pending the entry's cached score is
// the current model's score (the carry proof), and eligibility can only
// have changed for pending items (the user's rated set is fixed — a
// rating change drops the entry — and support never reverts to zero).
// For a complete entry the repaired list *is* the full ranking. For a
// truncated entry the stored cut (the old last element) bounds every
// unlisted item: each was strictly below it and kept its score, so if at
// least len(ranked) repaired elements still rank at-or-above the cut, no
// outsider can have entered the prefix and the repaired head is exact;
// otherwise the boundary may have been crossed and the repair reports
// failure.
func (mod *Model) repairRecEntry(user int, e *recEntry) *recEntry {
	row := mod.m.UserRatings(user)
	rescored := make([]mathx.Scored, 0, len(e.pending))
	for _, j := range e.pending {
		i := int(j)
		if i >= mod.m.NumItems() || len(mod.m.ItemRatings(i)) == 0 {
			continue
		}
		if _, rated := slices.BinarySearchFunc(row, j, func(en ratings.Entry, id int32) int {
			if en.Index < id {
				return -1
			}
			if en.Index > id {
				return 1
			}
			return 0
		}); rated {
			continue
		}
		rescored = append(rescored, mathx.Scored{Index: j, Score: mod.Predict(user, i)})
	}
	merged := make([]mathx.Scored, 0, len(e.ranked)+len(rescored))
	for _, s := range e.ranked {
		if _, isPending := slices.BinarySearch(e.pending, s.Index); !isPending {
			merged = append(merged, s)
		}
	}
	merged = append(merged, rescored...)
	mathx.SortScoredDesc(merged)

	if e.complete || len(e.ranked) == 0 {
		c := mod.recCacheCap()
		complete := len(merged) <= c
		if !complete {
			merged = merged[:c]
		}
		recCacheRepairs.Add(1)
		return &recEntry{ranked: merged, complete: complete}
	}
	cut := e.ranked[len(e.ranked)-1]
	keep := len(e.ranked)
	atOrAbove := 0
	for atOrAbove < len(merged) && !mathx.Precedes(cut, merged[atOrAbove]) {
		atOrAbove++
	}
	if atOrAbove < keep {
		recCacheRepairFallbacks.Add(1)
		return nil
	}
	recCacheRepairs.Add(1)
	return &recEntry{ranked: merged[:keep:keep], complete: false}
}
