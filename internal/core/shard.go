package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"cfsf/internal/similarity"
	"cfsf/internal/smoothing"
)

// ShardedModel views a trained Model as C per-cluster shards behind a
// thin router. The shard boundary is the user-cluster boundary of the
// offline phase (Eq. 6): each shard owns its users' matrix rows, their
// Eq. 8 smoothing deviations, and their iCluster rankings, while the GIS
// stays one shared read-mostly structure refreshed copy-on-write (item
// similarity is global by construction — splitting it per user cluster
// would change the algorithm).
//
// The wrapper changes who rebuilds what, not what is computed: Apply
// produces exactly the model WithUpdates would (bit-for-bit), but a batch
// confined to one shard rebuilds only that shard's structures. A
// ShardedModel is immutable like the Model it wraps; Apply and
// RetrainShard return new values. An unsharded deployment is the C=1
// special case.
type ShardedModel struct {
	mod    *Model       //cfsf:immutable
	shards []ShardStats //cfsf:immutable
	// dirty lists, ascending, the shards whose persisted rows this value's
	// construction invalidated relative to its predecessor (see
	// DirtyShards). It describes the transition, not cumulative state:
	// each Apply/RetrainShard result carries only its own step's dirt.
	dirty []int //cfsf:immutable
}

// ShardStats describes one shard of a ShardedModel.
type ShardStats struct {
	ID      int `json:"id"`
	Users   int `json:"users"`
	Ratings int `json:"ratings"`
	// Applies counts the Apply batches that touched this shard; Applied
	// counts the rating updates folded in by them.
	Applies int `json:"applies"`
	Applied int `json:"applied"`
	// LastApplyMS is the duration of the most recent apply that touched
	// this shard (the whole batch's duration, attributed to each shard it
	// touched).
	LastApplyMS float64 `json:"last_apply_ms"`
	// Retrains counts RetrainShard passes; LastRetrainMS is the duration
	// of the latest one.
	Retrains      int     `json:"retrains"`
	LastRetrainMS float64 `json:"last_retrain_ms"`
}

// NewSharded wraps an already-trained model. The shard count is the
// model's cluster count.
func NewSharded(mod *Model) *ShardedModel {
	return &ShardedModel{mod: mod, shards: make([]ShardStats, mod.clusters.K)}
}

// Model returns the wrapped monolithic model (the serving view: Predict,
// Recommend, persistence all operate on it unchanged).
func (s *ShardedModel) Model() *Model { return s.mod }

// NumShards returns the shard (= cluster) count.
func (s *ShardedModel) NumShards() int { return s.mod.clusters.K }

// ShardOf routes a user id to its shard: assigned users go to their
// cluster, users beyond the current assignment (new users) are routed
// round-robin by id so a routing decision made before the apply is stable
// across crash-recovery replay.
func (s *ShardedModel) ShardOf(user int) int {
	if user >= 0 && user < len(s.mod.clusters.Assign) {
		return s.mod.clusters.Assign[user]
	}
	return user % s.NumShards()
}

// Apply folds a batch of rating updates into a new ShardedModel. Batches
// that permit it take the shard-local incremental path (rebuilding only
// the touched shards); batches that dirty every shard (time decay, a
// times-transition) fall back to the monolithic WithUpdates pass. Either
// way the resulting model is bit-for-bit the one WithUpdates returns.
//
//cfsf:wallclock-ok apply duration recorded in ShardStats only; no clock value reaches predictions or replayed state
func (s *ShardedModel) Apply(updates []RatingUpdate) (*ShardedModel, error) {
	if len(updates) == 0 {
		return s, nil
	}
	// Attribute the batch to shards by pre-apply routing, so counters
	// match the routing decision a queueing layer made.
	touched := map[int]bool{}
	for _, up := range updates {
		if up.User < 0 {
			return nil, fmt.Errorf("cfsf: negative id in update (%d,%d)", up.User, up.Item)
		}
		touched[s.ShardOf(up.User)] = true
	}
	start := time.Now()
	next, ok, err := s.mod.withUpdatesIncremental(updates)
	if err != nil {
		return nil, err
	}
	if !ok {
		next, err = s.mod.WithUpdates(updates)
		if err != nil {
			return nil, err
		}
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	// Persistence dirt is the union of each changed user's pre-apply
	// routing and post-apply assignment: the refresh pass can move a user
	// to another cluster, invalidating both the shard that lost the row
	// and the one that gained it.
	dirtySet := make(map[int]bool, len(touched))
	for c := range touched {
		dirtySet[c] = true
	}
	for _, up := range updates {
		if up.User < len(next.clusters.Assign) {
			dirtySet[next.clusters.Assign[up.User]] = true
		}
	}
	out := &ShardedModel{mod: next, shards: append([]ShardStats(nil), s.shards...), dirty: sortedShardSet(dirtySet)}
	for c := range touched {
		if c < len(out.shards) {
			out.shards[c].Applies++
			out.shards[c].Applied += len(updates)
			out.shards[c].LastApplyMS = ms
		}
	}
	return out, nil
}

// RetrainShard re-fits one shard: its members are re-placed on their
// nearest current centroid (one Lloyd assignment sweep restricted to the
// shard) and every structure the moves invalidate is refreshed. Users
// that migrate to another cluster change shard. Combined with RebuildGIS
// and swept across all shards, this is the sharded replacement for a
// stop-the-world full retrain: each step locks in only one shard's worth
// of recompute.
//
//cfsf:wallclock-ok retrain duration recorded in ShardStats only; no clock value reaches predictions or replayed state
func (s *ShardedModel) RetrainShard(shard int) (*ShardedModel, error) {
	if shard < 0 || shard >= s.NumShards() {
		return nil, fmt.Errorf("cfsf: shard %d out of range [0,%d)", shard, s.NumShards())
	}
	start := time.Now()
	mod := s.mod
	members := mod.clusters.Members[shard]
	moved := make([]int, 0, 8)
	if len(members) > 0 {
		place := mod.clusters.NearestAll(mod.m, members)
		for j, u := range members {
			if place[j] != shard {
				moved = append(moved, u)
			}
		}
	}
	out := &ShardedModel{mod: mod, shards: append([]ShardStats(nil), s.shards...), dirty: []int{shard}}
	if len(moved) > 0 {
		cl, affected := mod.clusters.RefreshUsers(mod.m, moved)
		affItems := map[int]bool{}
		movedSet := map[int]bool{}
		for _, u := range moved {
			movedSet[u] = true
			for _, e := range mod.m.UserRatings(u) {
				affItems[int(e.Index)] = true
			}
		}
		next := &Model{cfg: mod.cfg, m: mod.m, gis: mod.gis, clusters: cl, stats: mod.stats, decay: mod.decay,
			// The GIS pointer is unchanged, so the id-sorted mirror carries over wholesale.
			topM: mod.topM, topM2: mod.topM2}
		next.sm = mod.sm.Refresh(mod.m, cl, affected, affItems, mod.cfg.Workers)
		next.ic = smoothing.RefreshICluster(mod.ic, next.sm, affected, movedSet, mod.cfg.Workers)
		next.neighborCache = make([]atomic.Pointer[[]likeMinded], mod.m.NumUsers())
		next.initRecCache()
		// No item changed (the matrix and GIS carry over), so the moved
		// users are the whole changed set: their entries drop, everyone
		// else's survive unless their cluster's smoothing fills or
		// candidate walks were rebuilt (the carry proof checks both).
		// moved is ascending (members lists are) as carryRecCache needs.
		next.carryRecCache(mod, moved, nil)
		out.mod = next
		dirtySet := map[int]bool{shard: true}
		for _, u := range moved {
			dirtySet[cl.Assign[u]] = true
		}
		out.dirty = sortedShardSet(dirtySet)
	}
	out.shards[shard].Retrains++
	out.shards[shard].LastRetrainMS = float64(time.Since(start)) / float64(time.Millisecond)
	return out, nil
}

// RebuildGIS recomputes the shared item-similarity structure from scratch
// on the current matrix. Incremental GIS refreshes only heal the changed
// items' own lists (truncated lists of unchanged items can go stale, see
// similarity.Refresh); a retrain sweep starts here so every shard's pass
// reads fresh similarities.
func (s *ShardedModel) RebuildGIS() *ShardedModel {
	mod := s.mod
	gisOpts := mod.gis.Options()
	var gis *similarity.GIS
	if mod.cfg.ContentBlend > 0 && len(mod.cfg.ItemFeatures) > 0 {
		gis = similarity.BuildGISWithContent(mod.m, mod.cfg.ItemFeatures, mod.cfg.ContentBlend, gisOpts)
	} else {
		gis = similarity.BuildGIS(mod.m, gisOpts)
	}
	next := &Model{cfg: mod.cfg, m: mod.m, gis: gis, clusters: mod.clusters,
		sm: mod.sm, ic: mod.ic, stats: mod.stats, decay: mod.decay}
	next.stats.GISNeighbors = gis.TotalNeighbors()
	next.neighborCache = make([]atomic.Pointer[[]likeMinded], mod.m.NumUsers())
	// A from-scratch GIS shares no backing arrays with the old one, so the
	// id-sorted mirror is rebuilt in full — and the recommendation cache
	// restarts cold: the rebuild may heal stale truncated lists,
	// legitimately moving scores for items outside any changed set.
	next.initRecCache()
	next.buildTopM(nil)
	return &ShardedModel{mod: next, shards: append([]ShardStats(nil), s.shards...)}
}

// ShardStats returns a copy of the per-shard statistics with live user
// and rating counts filled in from the current clustering.
func (s *ShardedModel) ShardStats() []ShardStats {
	out := append([]ShardStats(nil), s.shards...)
	for c := range out {
		out[c].ID = c
		out[c].Users = len(s.mod.clusters.Members[c])
		n := 0
		for _, u := range s.mod.clusters.Members[c] {
			n += len(s.mod.m.UserRatings(u))
		}
		out[c].Ratings = n
	}
	return out
}
