package smoothing

import (
	"math"
	"math/rand"
	"testing"

	"cfsf/internal/cluster"
	"cfsf/internal/ratings"
)

func randMatrix(rng *rand.Rand, users, items, n int) *ratings.Matrix {
	b := ratings.NewBuilder(users, items).SetScale(1, 5)
	for k := 0; k < n; k++ {
		b.MustAdd(rng.Intn(users), rng.Intn(items), float64(rng.Intn(9)+1)/2)
	}
	return b.Build()
}

func requireSameSmoother(t *testing.T, want, got *Smoother, k, q int) {
	t.Helper()
	for c := 0; c < k; c++ {
		for i := 0; i < q; i++ {
			wd, wh := want.Deviation(c, i)
			gd, gh := got.Deviation(c, i)
			if wd != gd || wh != gh {
				t.Fatalf("cluster %d item %d: want (%v,%v) got (%v,%v)", c, i, wd, wh, gd, gh)
			}
		}
	}
	if len(want.globalDev) != len(got.globalDev) {
		t.Fatalf("globalDev len: want %d got %d", len(want.globalDev), len(got.globalDev))
	}
	for i := range want.globalDev {
		if want.globalDev[i] != got.globalDev[i] || want.hasGlobal[i] != got.hasGlobal[i] {
			t.Fatalf("globalDev[%d]: want (%v,%v) got (%v,%v)",
				i, want.globalDev[i], want.hasGlobal[i], got.globalDev[i], got.hasGlobal[i])
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < q; i++ {
			// Bitwise compare: the NaN sentinel never equals itself under ==.
			if math.Float64bits(want.fill[c][i]) != math.Float64bits(got.fill[c][i]) {
				t.Fatalf("fill[%d][%d]: want %v got %v", c, i, want.fill[c][i], got.fill[c][i])
			}
		}
	}
}

func requireSameICluster(t *testing.T, want, got *ICluster) {
	t.Helper()
	if len(want.Order) != len(got.Order) {
		t.Fatalf("order len: want %d got %d", len(want.Order), len(got.Order))
	}
	for u := range want.Order {
		for r := range want.Order[u] {
			if want.Order[u][r] != got.Order[u][r] {
				t.Fatalf("user %d rank %d: want cluster %d got %d", u, r, want.Order[u][r], got.Order[u][r])
			}
			if want.Sim[u][r] != got.Sim[u][r] {
				t.Fatalf("user %d rank %d: want sim %v got %v", u, r, want.Sim[u][r], got.Sim[u][r])
			}
		}
	}
}

// TestRefreshMatchesFullBuild drives random update batches through the
// incremental Refresh/RefreshICluster pair and the full NewWeighted/
// BuildICluster rebuild, requiring exact equality of every deviation,
// every similarity, and every ranking.
func TestRefreshMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		m := randMatrix(rng, 24, 14, 170)
		cl, err := cluster.Run(m, cluster.Options{K: 4, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		sm := NewWeighted(m, cl, nil)
		ic := BuildICluster(sm, 1)

		// Random upsert batch, possibly growing users/items.
		growU, growI := rng.Intn(2), rng.Intn(2)
		nu, ni := 24+growU, 14+growI
		b := ratings.NewBuilder(nu, ni).SetScale(1, 5)
		for u := 0; u < 24; u++ {
			for _, e := range m.UserRatings(u) {
				b.MustAdd(u, int(e.Index), e.Value)
			}
		}
		changed := map[int]bool{}
		for k := 0; k < rng.Intn(5)+1; k++ {
			u := rng.Intn(nu)
			b.MustAdd(u, rng.Intn(ni), float64(rng.Intn(9)+1)/2)
			changed[u] = true
		}
		for u := 24; u < nu; u++ {
			b.MustAdd(u, rng.Intn(ni), float64(rng.Intn(9)+1)/2)
			changed[u] = true
		}
		m2 := b.Build()
		list := make([]int, 0, len(changed))
		for u := range changed {
			list = append(list, u)
		}

		cl2, affected := cl.RefreshUsers(m2, list)
		// Affected items: everything in a changed user's (new) row, since
		// the user mean shift touches every centred rating of the row.
		affItems := map[int]bool{}
		for u := range changed {
			for _, e := range m2.UserRatings(u) {
				affItems[int(e.Index)] = true
			}
		}

		wantSm := NewWeighted(m2, cl2, nil)
		gotSm := sm.Refresh(m2, cl2, affected, affItems, 0)
		requireSameSmoother(t, wantSm, gotSm, cl2.K, m2.NumItems())

		wantIC := BuildICluster(wantSm, 1)
		gotIC := RefreshICluster(ic, gotSm, affected, changed, 1)
		requireSameICluster(t, wantIC, gotIC)
	}
}

// TestRefreshSharesUntouchedClusters pins the structural-sharing contract:
// a batch confined to one cluster must not copy the other clusters' rows.
func TestRefreshSharesUntouchedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 20, 10, 140)
	cl, err := cluster.Run(m, cluster.Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sm := NewWeighted(m, cl, nil)
	got := sm.Refresh(m, cl, map[int]bool{0: true}, map[int]bool{}, 0)
	for c := 1; c < cl.K; c++ {
		if &got.dev[c][0] != &sm.dev[c][0] {
			t.Fatalf("cluster %d dev row was copied, expected shared", c)
		}
		if &got.fill[c][0] != &sm.fill[c][0] {
			t.Fatalf("cluster %d fill row was copied, expected shared (no affected items)", c)
		}
	}
	if &got.dev[0][0] == &sm.dev[0][0] {
		t.Fatal("affected cluster's dev row was shared, expected rebuilt")
	}
	if &got.fill[0][0] == &sm.fill[0][0] {
		t.Fatal("affected cluster's fill row was shared, expected rebuilt")
	}
}

// TestFillMemoMatchesFallbackChain pins the memo's contract: Fill must
// return exactly what the original fallback chain (cluster deviation,
// then global deviation, then plain user mean) computes, for every cell.
func TestFillMemoMatchesFallbackChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 30, 20, 150)
	cl, err := cluster.Run(m, cluster.Options{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sm := NewWeighted(m, cl, nil)
	for u := 0; u < m.NumUsers(); u++ {
		c := sm.Cluster(u)
		um := m.UserMean(u)
		for i := 0; i < m.NumItems(); i++ {
			want := um
			if d, ok := sm.Deviation(c, i); ok {
				want = um + d
			} else if g, ok := sm.GlobalDeviation(i); ok {
				want = um + g
			}
			if got := sm.Fill(u, i); got != want {
				t.Fatalf("Fill(%d,%d) = %v, chain gives %v", u, i, got, want)
			}
			f := sm.FillRow(u)[i]
			gotRow := um
			if f == f {
				gotRow = um + f
			}
			if gotRow != want {
				t.Fatalf("FillRow(%d)[%d] path = %v, chain gives %v", u, i, gotRow, want)
			}
		}
	}
}
