// Package smoothing implements the cluster-based rating smoothing of the
// CFSF offline phase (paper §IV-D, Eq. 7–8) and the per-user iCluster
// ranking (Eq. 9) that accelerates like-minded-user selection online.
//
// A smoothed rating never overwrites an observed one: Eq. 7 returns the
// stored rating when the user rated the item, and the user's mean plus
// the item's rating deviation within the user's cluster otherwise. The
// smoother records provenance (original vs smoothed) because the online
// phase weights the two kinds differently (Eq. 11's w).
package smoothing

import (
	"math"
	"slices"

	"cfsf/internal/cluster"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Smoother provides Eq. 7 smoothed ratings for every (user, item) cell.
// It is immutable and safe for concurrent use.
type Smoother struct {
	m      *ratings.Matrix
	assign []int
	// dev[c][i] = Δr_{C,i} (Eq. 8): mean of (r_{u,i} − r̄_u) over cluster
	// c's raters of item i.
	dev [][]float64
	// has[c][i] reports whether cluster c has any rater of item i.
	has [][]bool
	// globalDev[i] is the deviation over all raters of i, the fallback
	// when the user's own cluster never rated i.
	globalDev []float64
	hasGlobal []bool
	// fill[c][i] memoises the additive part of Eq. 7's fallback chain for
	// an unobserved cell: dev[c][i] when the cluster covers the item, else
	// globalDev[i], else NaN (meaning "plain user mean"). The online phase
	// reads whole rows of it (FillRow) instead of walking the chain per
	// cell. NaN is safe as the sentinel because both deviations are
	// finite by construction (ratios of finite sums with positive counts).
	fill [][]float64
	k    int
}

// New builds a Smoother from a matrix and a finished clustering.
func New(m *ratings.Matrix, cl *cluster.Result) *Smoother {
	return NewWeighted(m, cl, nil)
}

// NewWeighted builds a Smoother whose Eq. 8 deviations weight each
// rating by weights[u][k] (aligned with UserRatings(u); nil = uniform).
// The time-decayed CFSF extension passes recency multipliers here so the
// smoothed fills track the present rather than the all-time average.
func NewWeighted(m *ratings.Matrix, cl *cluster.Result, weights [][]float64) *Smoother {
	k, q := cl.K, m.NumItems()
	s := &Smoother{
		m:         m,
		assign:    cl.Assign,
		dev:       make([][]float64, k),
		has:       make([][]bool, k),
		globalDev: make([]float64, q),
		hasGlobal: make([]bool, q),
		k:         k,
	}
	sum := make([][]float64, k)
	cnt := make([][]float64, k)
	for c := 0; c < k; c++ {
		sum[c] = make([]float64, q)
		cnt[c] = make([]float64, q)
		s.dev[c] = make([]float64, q)
		s.has[c] = make([]bool, q)
	}
	gSum := make([]float64, q)
	gCnt := make([]float64, q)

	for u := 0; u < m.NumUsers(); u++ {
		c := cl.Assign[u]
		um := m.UserMean(u)
		var w []float64
		if weights != nil {
			w = weights[u]
		}
		for j, e := range m.UserRatings(u) {
			wt := 1.0
			if w != nil {
				wt = w[j]
			}
			d := wt * (e.Value - um)
			sum[c][e.Index] += d
			cnt[c][e.Index] += wt
			gSum[e.Index] += d
			gCnt[e.Index] += wt
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < q; i++ {
			if cnt[c][i] > 0 {
				s.dev[c][i] = sum[c][i] / cnt[c][i]
				s.has[c][i] = true
			}
		}
	}
	for i := 0; i < q; i++ {
		if gCnt[i] > 0 {
			s.globalDev[i] = gSum[i] / gCnt[i]
			s.hasGlobal[i] = true
		}
	}
	s.fill = make([][]float64, k)
	for c := 0; c < k; c++ {
		s.fill[c] = s.fillRowFor(c)
	}
	return s
}

// fillRowFor materialises cluster c's fill memo row from the already
// computed deviations. The values are the exact addends Fill's fallback
// chain would pick, so memoised fills are bit-identical to chained ones.
func (s *Smoother) fillRowFor(c int) []float64 {
	q := len(s.globalDev)
	row := make([]float64, q)
	for i := 0; i < q; i++ {
		switch {
		case s.has[c][i]:
			row[i] = s.dev[c][i]
		case s.hasGlobal[i]:
			row[i] = s.globalDev[i]
		default:
			row[i] = math.NaN()
		}
	}
	return row
}

// NumClusters returns the cluster count the smoother was built from.
func (s *Smoother) NumClusters() int { return s.k }

// Cluster returns the cluster id of user u.
func (s *Smoother) Cluster(u int) int { return s.assign[u] }

// Matrix returns the underlying (unsmoothed) matrix.
func (s *Smoother) Matrix() *ratings.Matrix { return s.m }

// Rating implements Eq. 7. It returns the value and whether it is an
// original (observed) rating; original=false means the value was
// smoothed. The fallback chain for a cell whose cluster has no rater of
// the item is: user mean + global item deviation, then plain user mean.
func (s *Smoother) Rating(u, i int) (value float64, original bool) {
	if r, ok := s.m.Rating(u, i); ok {
		return r, true
	}
	return s.Fill(u, i), false
}

// Fill returns the Eq. 7 smoothed value for a cell the caller already
// knows is unobserved, skipping the observed-rating lookup. It is the
// fast path of the online phase, where merge iteration over sorted rows
// has already established that (u, i) is missing.
func (s *Smoother) Fill(u, i int) float64 {
	um := s.m.UserMean(u)
	if f := s.fill[s.assign[u]][i]; f == f {
		return um + f
	}
	return um
}

// FillRow returns the fill memo row of user u's cluster: FillRow(u)[i]
// is the addend Fill(u, i) adds to the user mean, with NaN marking
// cells where the fallback chain bottoms out at the plain user mean.
// The row is shared with the Smoother and must not be modified.
func (s *Smoother) FillRow(u int) []float64 { return s.fill[s.assign[u]] }

// ClusterFillRow returns cluster c's fill memo row directly (the row
// FillRow returns for c's members). Read-only, like FillRow.
func (s *Smoother) ClusterFillRow(c int) []float64 { return s.fill[c] }

// Deviation returns Δr_{C,i} (Eq. 8) for cluster c and item i, and
// whether the cluster has any rater of i.
func (s *Smoother) Deviation(c, i int) (float64, bool) {
	return s.dev[c][i], s.has[c][i]
}

// GlobalDeviation returns the all-raters deviation for item i and
// whether i has any rater — the fallback Fill uses when the user's own
// cluster never rated i.
func (s *Smoother) GlobalDeviation(i int) (float64, bool) {
	return s.globalDev[i], s.hasGlobal[i]
}

// ICluster stores, for every user, the clusters ranked by descending
// Eq. 9 similarity. The online phase walks this order to build the
// candidate set for top-K like-minded-user selection.
type ICluster struct {
	// Order[u] lists cluster ids, most similar first.
	Order [][]int32
	// Sim[u][rank] is the Eq. 9 similarity of Order[u][rank].
	Sim [][]float64
}

// BuildICluster ranks all clusters for every user (parallel over users).
func BuildICluster(s *Smoother, workers int) *ICluster {
	p := s.m.NumUsers()
	ic := &ICluster{
		Order: make([][]int32, p),
		Sim:   make([][]float64, p),
	}
	parallel.For(p, workers, func(u int) {
		sims := make([]float64, s.k)
		for c := 0; c < s.k; c++ {
			sims[c] = s.UserClusterSim(u, c)
		}
		order := make([]int32, s.k)
		for c := range order {
			order[c] = int32(c)
		}
		sortClusterOrder(order, sims)
		sorted := make([]float64, s.k)
		for r, c := range order {
			sorted[r] = sims[c]
		}
		ic.Order[u] = order
		ic.Sim[u] = sorted
	})
	return ic
}

// sortClusterOrder orders cluster ids by similarity descending, id
// ascending. The comparator is a strict total order (ids are unique), so
// any comparison sort yields the same ranking; slices.SortFunc avoids the
// reflection overhead of sort.Slice in what is a per-user hot loop.
func sortClusterOrder(order []int32, sims []float64) {
	slices.SortFunc(order, func(a, b int32) int {
		if sims[a] != sims[b] {
			if sims[a] > sims[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})
}

// UserClusterSim computes Eq. 9: the correlation between user u's centred
// ratings and cluster c's deviations, over the items u rated that c
// covers. Returns 0 when there is no overlap or no variance.
func (s *Smoother) UserClusterSim(u, c int) float64 {
	um := s.m.UserMean(u)
	var sxy, sxx, syy float64
	n := 0
	for _, e := range s.m.UserRatings(u) {
		if !s.has[c][e.Index] {
			continue
		}
		dx := s.dev[c][e.Index]
		dy := e.Value - um
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
		n++
	}
	if n == 0 || sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}
