package smoothing

import (
	"sort"

	"cfsf/internal/cluster"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Incremental refresh of the smoothing structures, the smoothing half of
// the sharded apply path. A micro-batch that touches users in a handful
// of clusters invalidates exactly those clusters' Eq. 8 deviation rows
// (their membership or their members' rows/means changed) plus the global
// deviations of the items the changed users rated (a changed user mean
// shifts every centred rating in that user's row). Everything else is
// bit-identical to what NewWeighted would recompute, so it is shared.
//
// Both refreshes reproduce the full build's floating-point accumulation
// order exactly: per-cluster sums iterate members in ascending user order
// (NewWeighted's u = 0..P loop visits a fixed cluster's members in that
// order), and per-item global sums iterate the item's column, which the
// matrix stores in ascending user order. This is what lets the sharded
// and monolithic apply paths produce byte-identical models.

// Refresh returns a new Smoother for the updated matrix and clustering in
// which only the listed clusters' deviation rows and the listed items'
// global deviations are recomputed; the rest is shared with s. It is only
// valid for uniformly-weighted smoothers (weights change globally under
// time decay; callers fall back to NewWeighted there).
func (s *Smoother) Refresh(m *ratings.Matrix, cl *cluster.Result, affectedClusters map[int]bool, affectedItems map[int]bool) *Smoother {
	k, q := cl.K, m.NumItems()
	out := &Smoother{
		m:         m,
		assign:    cl.Assign,
		dev:       make([][]float64, k),
		has:       make([][]bool, k),
		globalDev: make([]float64, q),
		hasGlobal: make([]bool, q),
		k:         k,
	}
	for c := 0; c < k; c++ {
		if !affectedClusters[c] {
			out.dev[c] = padDevs(s.dev[c], q)
			out.has[c] = padFlags(s.has[c], q)
			continue
		}
		sum := make([]float64, q)
		cnt := make([]float64, q)
		out.dev[c] = make([]float64, q)
		out.has[c] = make([]bool, q)
		for _, u := range cl.Members[c] {
			um := m.UserMean(u)
			for _, e := range m.UserRatings(u) {
				sum[e.Index] += e.Value - um
				cnt[e.Index]++
			}
		}
		for i := 0; i < q; i++ {
			if cnt[i] > 0 {
				out.dev[c][i] = sum[i] / cnt[i]
				out.has[c][i] = true
			}
		}
	}

	copy(out.globalDev, s.globalDev)
	copy(out.hasGlobal, s.hasGlobal)
	for i := range affectedItems {
		if i >= q {
			continue
		}
		var gSum, gCnt float64
		for _, e := range m.ItemRatings(i) {
			gSum += e.Value - m.UserMean(int(e.Index))
			gCnt++
		}
		out.globalDev[i], out.hasGlobal[i] = 0, false
		if gCnt > 0 {
			out.globalDev[i] = gSum / gCnt
			out.hasGlobal[i] = true
		}
	}
	return out
}

// RefreshICluster re-ranks clusters per user after a shard-local apply.
// Users listed in changedUsers (and users beyond the old ranking's length,
// i.e. newly added ones) get a full Eq. 9 recompute; everyone else keeps
// their similarities to untouched clusters and recomputes only the
// affected clusters' entries before re-sorting. The sort comparator is a
// strict total order (similarity desc, cluster id asc), so the resulting
// ranking is identical to BuildICluster's regardless of which path
// produced each similarity.
func RefreshICluster(old *ICluster, s *Smoother, affectedClusters map[int]bool, changedUsers map[int]bool, workers int) *ICluster {
	p := s.m.NumUsers()
	ic := &ICluster{
		Order: make([][]int32, p),
		Sim:   make([][]float64, p),
	}
	// Sorted for a fixed per-user recompute order (map iteration order
	// varies per run; the per-cluster writes land in distinct slots, but
	// a fixed order keeps the loop trivially replay-safe).
	affList := make([]int, 0, len(affectedClusters))
	for c := range affectedClusters {
		affList = append(affList, c)
	}
	sort.Ints(affList)
	parallel.For(p, workers, func(u int) {
		sims := make([]float64, s.k)
		if changedUsers[u] || u >= len(old.Order) || len(old.Order[u]) != s.k {
			for c := 0; c < s.k; c++ {
				sims[c] = s.UserClusterSim(u, c)
			}
		} else {
			for r, c := range old.Order[u] {
				sims[c] = old.Sim[u][r]
			}
			same := true
			for _, c := range affList {
				v := s.UserClusterSim(u, c)
				if v != sims[c] {
					sims[c] = v
					same = false
				}
			}
			if same {
				// No similarity moved: the old ranking is the new
				// ranking; share its slices instead of re-sorting.
				ic.Order[u] = old.Order[u]
				ic.Sim[u] = old.Sim[u]
				return
			}
		}
		order := make([]int32, s.k)
		for c := range order {
			order[c] = int32(c)
		}
		sortClusterOrder(order, sims)
		sorted := make([]float64, s.k)
		for r, c := range order {
			sorted[r] = sims[c]
		}
		ic.Order[u] = order
		ic.Sim[u] = sorted
	})
	return ic
}

func padDevs(a []float64, n int) []float64 {
	if len(a) == n {
		return a
	}
	out := make([]float64, n)
	copy(out, a)
	return out
}

func padFlags(a []bool, n int) []bool {
	if len(a) == n {
		return a
	}
	out := make([]bool, n)
	copy(out, a)
	return out
}
