package smoothing

import (
	"math"
	"sort"

	"cfsf/internal/cluster"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Incremental refresh of the smoothing structures, the smoothing half of
// the sharded apply path. A micro-batch that touches users in a handful
// of clusters invalidates exactly those clusters' Eq. 8 deviation rows
// (their membership or their members' rows/means changed) plus the global
// deviations of the items the changed users rated (a changed user mean
// shifts every centred rating in that user's row). Everything else is
// bit-identical to what NewWeighted would recompute, so it is shared.
//
// Both refreshes reproduce the full build's floating-point accumulation
// order exactly: per-cluster sums iterate members in ascending user order
// (NewWeighted's u = 0..P loop visits a fixed cluster's members in that
// order), and per-item global sums iterate the item's column, which the
// matrix stores in ascending user order. This is what lets the sharded
// and monolithic apply paths produce byte-identical models.

// Refresh returns a new Smoother for the updated matrix and clustering in
// which only the listed clusters' deviation rows and the listed items'
// global deviations are recomputed; the rest is shared with s. It is only
// valid for uniformly-weighted smoothers (weights change globally under
// time decay; callers fall back to NewWeighted there).
//
// Both recompute loops run on a worker pool: every cluster (= shard) and
// every affected item is an independent slot write, so a multi-shard
// batch refreshes its shards concurrently while staying bit-identical to
// the serial pass — each slot's accumulation order is fixed regardless
// of which worker runs it.
func (s *Smoother) Refresh(m *ratings.Matrix, cl *cluster.Result, affectedClusters map[int]bool, affectedItems map[int]bool, workers int) *Smoother {
	k, q := cl.K, m.NumItems()
	out := &Smoother{
		m:         m,
		assign:    cl.Assign,
		dev:       make([][]float64, k),
		has:       make([][]bool, k),
		globalDev: make([]float64, q),
		hasGlobal: make([]bool, q),
		fill:      make([][]float64, k),
		k:         k,
	}
	// Sorted affected-item list: a fixed recompute order (map iteration
	// varies per run) and an indexable work list for the parallel loop.
	affList := make([]int, 0, len(affectedItems))
	for i := range affectedItems {
		if i < q {
			affList = append(affList, i)
		}
	}
	sort.Ints(affList)

	// Global deviations first: the per-cluster pass below derives fill
	// rows from them.
	copy(out.globalDev, s.globalDev)
	copy(out.hasGlobal, s.hasGlobal)
	parallel.For(len(affList), workers, func(x int) {
		i := affList[x]
		var gSum, gCnt float64
		for _, e := range m.ItemRatings(i) {
			gSum += e.Value - m.UserMean(int(e.Index))
			gCnt++
		}
		out.globalDev[i], out.hasGlobal[i] = 0, false
		if gCnt > 0 {
			out.globalDev[i] = gSum / gCnt
			out.hasGlobal[i] = true
		}
	})

	parallel.For(k, workers, func(c int) {
		if !affectedClusters[c] {
			out.dev[c] = padDevs(s.dev[c], q)
			out.has[c] = padFlags(s.has[c], q)
			out.fill[c] = patchedFillRow(s.fill[c], out, c, affList, q)
			return
		}
		sum := make([]float64, q)
		cnt := make([]float64, q)
		out.dev[c] = make([]float64, q)
		out.has[c] = make([]bool, q)
		for _, u := range cl.Members[c] {
			um := m.UserMean(u)
			for _, e := range m.UserRatings(u) {
				sum[e.Index] += e.Value - um
				cnt[e.Index]++
			}
		}
		for i := 0; i < q; i++ {
			if cnt[i] > 0 {
				out.dev[c][i] = sum[i] / cnt[i]
				out.has[c][i] = true
			}
		}
		out.fill[c] = out.fillRowFor(c)
	})
	return out
}

// patchedFillRow is the copy-on-write fill invalidation for a cluster
// whose own deviations did not change: only affected items' cells can
// differ, and only where the cluster has no deviation of its own (those
// cells read the recomputed global fallback). When no such cell exists
// the old row is shared outright.
func patchedFillRow(base []float64, out *Smoother, c int, affList []int, q int) []float64 {
	need := len(base) != q
	if !need {
		for _, i := range affList {
			if !out.has[c][i] {
				need = true
				break
			}
		}
	}
	if !need {
		return base
	}
	row := make([]float64, q)
	copy(row, base)
	// Cells past the old item count default to the NaN sentinel; every
	// genuinely new item is in affList (it entered via a changed user's
	// row) and gets patched below.
	for i := len(base); i < q; i++ {
		row[i] = math.NaN()
	}
	for _, i := range affList {
		switch {
		case out.has[c][i]:
			row[i] = out.dev[c][i]
		case out.hasGlobal[i]:
			row[i] = out.globalDev[i]
		default:
			row[i] = math.NaN()
		}
	}
	return row
}

// RefreshICluster re-ranks clusters per user after a shard-local apply.
// Users listed in changedUsers (and users beyond the old ranking's length,
// i.e. newly added ones) get a full Eq. 9 recompute; everyone else keeps
// their similarities to untouched clusters and recomputes only the
// affected clusters' entries before re-sorting. The sort comparator is a
// strict total order (similarity desc, cluster id asc), so the resulting
// ranking is identical to BuildICluster's regardless of which path
// produced each similarity.
func RefreshICluster(old *ICluster, s *Smoother, affectedClusters map[int]bool, changedUsers map[int]bool, workers int) *ICluster {
	p := s.m.NumUsers()
	ic := &ICluster{
		Order: make([][]int32, p),
		Sim:   make([][]float64, p),
	}
	// Sorted for a fixed per-user recompute order (map iteration order
	// varies per run; the per-cluster writes land in distinct slots, but
	// a fixed order keeps the loop trivially replay-safe).
	affList := make([]int, 0, len(affectedClusters))
	for c := range affectedClusters {
		affList = append(affList, c)
	}
	sort.Ints(affList)
	parallel.For(p, workers, func(u int) {
		sims := make([]float64, s.k)
		if changedUsers[u] || u >= len(old.Order) || len(old.Order[u]) != s.k {
			for c := 0; c < s.k; c++ {
				sims[c] = s.UserClusterSim(u, c)
			}
		} else {
			for r, c := range old.Order[u] {
				sims[c] = old.Sim[u][r]
			}
			same := true
			for _, c := range affList {
				v := s.UserClusterSim(u, c)
				if v != sims[c] {
					sims[c] = v
					same = false
				}
			}
			if same {
				// No similarity moved: the old ranking is the new
				// ranking; share its slices instead of re-sorting.
				ic.Order[u] = old.Order[u]
				ic.Sim[u] = old.Sim[u]
				return
			}
		}
		order := make([]int32, s.k)
		for c := range order {
			order[c] = int32(c)
		}
		sortClusterOrder(order, sims)
		sorted := make([]float64, s.k)
		for r, c := range order {
			sorted[r] = sims[c]
		}
		ic.Order[u] = order
		ic.Sim[u] = sorted
	})
	return ic
}

func padDevs(a []float64, n int) []float64 {
	if len(a) == n {
		return a
	}
	out := make([]float64, n)
	copy(out, a)
	return out
}

func padFlags(a []bool, n int) []bool {
	if len(a) == n {
		return a
	}
	out := make([]bool, n)
	copy(out, a)
	return out
}
