package smoothing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cfsf/internal/cluster"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

func fixture(t *testing.T) (*ratings.Matrix, *cluster.Result, *Smoother) {
	t.Helper()
	// 4 users, 3 items. Clusters fixed by hand: {0,1} and {2,3}.
	b := ratings.NewBuilder(4, 3)
	b.MustAdd(0, 0, 4) // user 0: mean 3
	b.MustAdd(0, 1, 2)
	b.MustAdd(1, 0, 5) // user 1: mean 5
	b.MustAdd(2, 1, 1) // user 2: mean 2
	b.MustAdd(2, 2, 3)
	b.MustAdd(3, 2, 4) // user 3: mean 4
	m := b.Build()
	cl := &cluster.Result{
		Assign:  []int{0, 0, 1, 1},
		Members: [][]int{{0, 1}, {2, 3}},
		K:       2,
	}
	return m, cl, New(m, cl)
}

func TestSmootherKeepsObserved(t *testing.T) {
	m, _, s := fixture(t)
	for u := 0; u < m.NumUsers(); u++ {
		for _, e := range m.UserRatings(u) {
			v, orig := s.Rating(u, int(e.Index))
			if !orig {
				t.Fatalf("observed (%d,%d) reported as smoothed", u, e.Index)
			}
			if v != e.Value {
				t.Fatalf("observed (%d,%d) = %g, want %g", u, e.Index, v, e.Value)
			}
		}
	}
}

func TestSmootherEq7(t *testing.T) {
	_, _, s := fixture(t)
	// Cluster 0 deviations: item 0 rated by u0 (4-3=1) and u1 (5-5=0) →
	// Δ = 0.5. Item 1 rated by u0 (2-3=-1) → Δ = -1. Item 2: none.
	if d, ok := s.Deviation(0, 0); !ok || !approx(d, 0.5) {
		t.Errorf("Δ(0,0) = %g,%v, want 0.5,true", d, ok)
	}
	if d, ok := s.Deviation(0, 1); !ok || !approx(d, -1) {
		t.Errorf("Δ(0,1) = %g,%v, want -1,true", d, ok)
	}
	if _, ok := s.Deviation(0, 2); ok {
		t.Error("Δ(0,2) must be unavailable")
	}
	// Smoothed value for user 1 (mean 5) on item 1: 5 + (-1) = 4.
	if v, orig := s.Rating(1, 1); orig || !approx(v, 4) {
		t.Errorf("smoothed (1,1) = %g,%v, want 4,false", v, orig)
	}
	// User 1 on item 2: cluster 0 has no raters → global deviation.
	// Global Δ(item2) = (3-2 + 4-4)/2 = 0.5 → 5 + 0.5 = 5.5.
	if v, orig := s.Rating(1, 2); orig || !approx(v, 5.5) {
		t.Errorf("smoothed (1,2) = %g,%v, want 5.5,false", v, orig)
	}
}

func TestFillMatchesRatingForUnobserved(t *testing.T) {
	m, _, s := fixture(t)
	for u := 0; u < m.NumUsers(); u++ {
		for i := 0; i < m.NumItems(); i++ {
			if _, ok := m.Rating(u, i); ok {
				continue
			}
			want, _ := s.Rating(u, i)
			if got := s.Fill(u, i); !approx(got, want) {
				t.Fatalf("Fill(%d,%d) = %g, want %g", u, i, got, want)
			}
		}
	}
}

func TestSmootherAccessors(t *testing.T) {
	m, cl, s := fixture(t)
	if s.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want 2", s.NumClusters())
	}
	if s.Matrix() != m {
		t.Error("Matrix() must return the source matrix")
	}
	for u, c := range cl.Assign {
		if s.Cluster(u) != c {
			t.Errorf("Cluster(%d) = %d, want %d", u, s.Cluster(u), c)
		}
	}
}

func TestUserClusterSimBounds(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cl, err := cluster.Run(d.Matrix, cluster.Options{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(d.Matrix, cl)
	for u := 0; u < d.Matrix.NumUsers(); u++ {
		for c := 0; c < cl.K; c++ {
			sim := s.UserClusterSim(u, c)
			if sim < -1-1e-9 || sim > 1+1e-9 {
				t.Fatalf("UserClusterSim(%d,%d) = %g out of [-1,1]", u, c, sim)
			}
		}
	}
}

func TestICluster(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cl, err := cluster.Run(d.Matrix, cluster.Options{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(d.Matrix, cl)
	ic := BuildICluster(s, 4)
	if len(ic.Order) != d.Matrix.NumUsers() {
		t.Fatalf("Order covers %d users, want %d", len(ic.Order), d.Matrix.NumUsers())
	}
	for u := range ic.Order {
		if len(ic.Order[u]) != cl.K {
			t.Fatalf("user %d ranks %d clusters, want %d", u, len(ic.Order[u]), cl.K)
		}
		seen := map[int32]bool{}
		for r, c := range ic.Order[u] {
			if c < 0 || int(c) >= cl.K || seen[c] {
				t.Fatalf("user %d rank %d: invalid or duplicate cluster %d", u, r, c)
			}
			seen[c] = true
			// Sim values must be sorted descending and agree with the
			// direct computation.
			if want := s.UserClusterSim(u, int(c)); !approx(ic.Sim[u][r], want) {
				t.Fatalf("user %d rank %d sim %g, want %g", u, r, ic.Sim[u][r], want)
			}
			if r > 0 && ic.Sim[u][r-1] < ic.Sim[u][r] {
				t.Fatalf("user %d iCluster sims not descending", u)
			}
		}
	}
}

func TestIClusterDeterministicAcrossWorkers(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	cl, err := cluster.Run(d.Matrix, cluster.Options{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(d.Matrix, cl)
	a := BuildICluster(s, 1)
	b := BuildICluster(s, 8)
	for u := range a.Order {
		for r := range a.Order[u] {
			if a.Order[u][r] != b.Order[u][r] {
				t.Fatalf("iCluster order differs across worker counts (user %d)", u)
			}
		}
	}
}

// Property: on random matrices and clusterings, every smoothed value is
// finite, observed cells keep their values, and Fill agrees with Rating.
func TestSmootherProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 3+rng.Intn(12), 2+rng.Intn(12)
		k := 1 + rng.Intn(4)
		b := ratings.NewBuilder(p, q)
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				if rng.Float64() < 0.4 {
					b.MustAdd(u, i, float64(1+rng.Intn(5)))
				}
			}
		}
		m := b.Build()
		cl := &cluster.Result{K: k, Assign: make([]int, p), Members: make([][]int, k)}
		for u := 0; u < p; u++ {
			c := rng.Intn(k)
			cl.Assign[u] = c
			cl.Members[c] = append(cl.Members[c], u)
		}
		s := New(m, cl)
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				v, orig := s.Rating(u, i)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
				if r, ok := m.Rating(u, i); ok {
					if !orig || v != r {
						return false
					}
				} else {
					if orig || !approx(v, s.Fill(u, i)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func smallSynth() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 80
	cfg.Items = 100
	cfg.MinPerUser = 12
	cfg.MeanPerUser = 25
	cfg.Archetypes = 6
	return cfg
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
