// Benchmarks regenerating every table and figure of the paper (§V) plus
// micro-benchmarks of the offline and online phases. Experiment benches
// subsample the testset to 25% so `go test -bench=.` finishes in minutes;
// cmd/cfsf-bench runs the same experiments at full size and EXPERIMENTS.md
// records both.
//
// Accuracy results are attached to the benchmark output via
// b.ReportMetric (MAE_* fields), so one `-bench` run shows both the speed
// and the reproduced numbers.
package cfsf_test

import (
	"bytes"
	"sync"
	"testing"

	"cfsf"
	"cfsf/internal/cluster"
	"cfsf/internal/core"
	"cfsf/internal/experiments"
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
	"cfsf/internal/smoothing"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the shared benchmark environment (dataset + cached splits,
// 25% of the test targets).
func env() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv()
		benchEnv.TargetFraction = 0.25
	})
	return benchEnv
}

// --- Table benches -------------------------------------------------------

func BenchmarkTableI_DatasetStats(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = e.TableI().String()
	}
	m := e.Data.Matrix
	b.ReportMetric(float64(m.NumRatings()), "ratings")
	b.ReportMetric(100*m.Density(), "density_%")
}

func BenchmarkTableII_CFSFvsSURvsSIR(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		cells, _, err := e.TableII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportGrid(b, cells)
		}
	}
}

func BenchmarkTableIII_StateOfTheArt(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		cells, _, err := e.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportGrid(b, cells)
		}
	}
}

// reportGrid attaches the ML_300 row of a grid as benchmark metrics.
func reportGrid(b *testing.B, cells []experiments.Cell) {
	for _, c := range cells {
		if c.TrainSize == 300 && c.Given == 10 {
			b.ReportMetric(c.MAE, "MAE_"+c.Method+"_ML300_G10")
		}
	}
}

// --- Figure benches ------------------------------------------------------

func benchCurves(b *testing.B, run func() ([]experiments.FigureCurve, error), label string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		curves, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				if c.Given != 10 {
					continue
				}
				best, worst := c.Points[0], c.Points[0]
				for _, p := range c.Points {
					if p.MAE < best.MAE {
						best = p
					}
					if p.MAE > worst.MAE {
						worst = p
					}
				}
				b.ReportMetric(best.Param, label+"_best_param_G10")
				b.ReportMetric(best.MAE, label+"_best_MAE_G10")
				b.ReportMetric(worst.MAE, label+"_worst_MAE_G10")
			}
		}
	}
}

func BenchmarkFig2_SweepM(b *testing.B)      { benchCurves(b, env().Fig2M, "M") }
func BenchmarkFig3_SweepK(b *testing.B)      { benchCurves(b, env().Fig3K, "K") }
func BenchmarkFig4_SweepC(b *testing.B)      { benchCurves(b, env().Fig4C, "C") }
func BenchmarkFig6_SweepLambda(b *testing.B) { benchCurves(b, env().Fig6Lambda, "lambda") }
func BenchmarkFig7_SweepDelta(b *testing.B)  { benchCurves(b, env().Fig7Delta, "delta") }
func BenchmarkFig8_SweepW(b *testing.B)      { benchCurves(b, env().Fig8W, "w") }

func BenchmarkFig5_ResponseTime(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		points, err := e.Fig5ResponseTime()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var cfsfMS, scbMS float64
			for _, p := range points {
				if p.TrainSize == 300 && p.Fraction == 1.0 {
					if p.Method == "cfsf" {
						cfsfMS = p.Millis
					} else {
						scbMS = p.Millis
					}
				}
			}
			b.ReportMetric(cfsfMS, "cfsf_ML300_100%_ms")
			b.ReportMetric(scbMS, "scbpcc_ML300_100%_ms")
			if cfsfMS > 0 {
				b.ReportMetric(scbMS/cfsfMS, "speedup_x")
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §5) --------------------------------------

func benchAblation(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	e := env()
	split := e.Split(300, 10)
	cfg := experiments.CFSFConfig()
	mutate(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := experiments.NewCFSF(cfg)
		if err := p.Fit(split.Matrix); err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, tg := range split.Targets {
			sum += abs(p.Predict(tg.User, tg.Item) - tg.Actual)
		}
		if i == 0 {
			b.ReportMetric(sum/float64(len(split.Targets)), "MAE")
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkAblation_Default(b *testing.B) {
	benchAblation(b, func(*core.Config) {})
}

func BenchmarkAblation_NoSmoothing(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableSmoothing = true })
}

func BenchmarkAblation_FullUserSearch(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.FullUserSearch = true })
}

func BenchmarkAblation_NoSUIR(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Delta = 0 })
}

func BenchmarkAblation_CosineGIS(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.GIS.Metric = similarity.Cosine })
}

func BenchmarkAblation_NoCache(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableCache = true })
}

// --- Micro benches: offline phase -----------------------------------------

func BenchmarkOffline_BuildGIS(b *testing.B) {
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.BuildGIS(m, similarity.DefaultGISOptions())
	}
}

func BenchmarkOffline_KMeans(b *testing.B) {
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(m, cluster.Options{K: 30, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOffline_Smoothing(b *testing.B) {
	m := env().Data.Matrix
	cl, err := cluster.Run(m, cluster.Options{K: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smoothing.New(m, cl)
	}
}

func BenchmarkOffline_ICluster(b *testing.B) {
	m := env().Data.Matrix
	cl, err := cluster.Run(m, cluster.Options{K: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sm := smoothing.New(m, cl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smoothing.BuildICluster(sm, 0)
	}
}

func BenchmarkOffline_TrainFull(b *testing.B) {
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfsf.Train(m, cfsf.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro benches: online phase -------------------------------------------

func trainedModel(b *testing.B) *cfsf.Model {
	b.Helper()
	mod, err := cfsf.Train(env().Data.Matrix, cfsf.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return mod
}

func BenchmarkOnline_PredictColdUser(b *testing.B) {
	mod := trainedModel(b)
	cfg := mod.Config()
	cfg.DisableCache = true
	cold, err := cfsf.Train(env().Data.Matrix, cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold.Predict(i%m.NumUsers(), (i*7)%m.NumItems())
	}
}

func BenchmarkOnline_PredictWarmCache(b *testing.B) {
	mod := trainedModel(b)
	m := env().Data.Matrix
	mod.Predict(0, 0) // warm user 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Predict(0, i%m.NumItems())
	}
}

func BenchmarkOnline_PredictBatch1k(b *testing.B) {
	mod := trainedModel(b)
	m := env().Data.Matrix
	pairs := make([]cfsf.Pair, 1000)
	for k := range pairs {
		pairs[k] = cfsf.Pair{User: k % m.NumUsers(), Item: (k * 13) % m.NumItems()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.PredictBatch(pairs)
	}
}

func BenchmarkOnline_Recommend10(b *testing.B) {
	mod := trainedModel(b)
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Recommend(i%m.NumUsers(), 10)
	}
}

// --- Substrate benches ------------------------------------------------------

func BenchmarkMatrix_RatingLookup(b *testing.B) {
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rating(i%m.NumUsers(), (i*31)%m.NumItems())
	}
}

func BenchmarkMatrix_Build(b *testing.B) {
	src := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := ratings.NewBuilder(src.NumUsers(), src.NumItems())
		for u := 0; u < src.NumUsers(); u++ {
			for _, e := range src.UserRatings(u) {
				bu.MustAdd(u, int(e.Index), e.Value)
			}
		}
		bu.Build()
	}
}

func BenchmarkSimilarity_UserPCC(b *testing.B) {
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.UserPCC(m, i%m.NumUsers(), (i*3+1)%m.NumUsers())
	}
}

// --- Extension benches (beyond the paper) -----------------------------------

func BenchmarkExtension_TopNRanking(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows, err := e.TopNRanking(nil, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Method == "cfsf" {
					b.ReportMetric(r.PrecisionAtN, "cfsf_P@10")
					b.ReportMetric(r.NDCGAtN, "cfsf_NDCG@10")
				}
			}
		}
	}
}

func BenchmarkExtension_PostPaperGrid(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		cells, _, err := e.ExtensionGrid()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportGrid(b, cells)
		}
	}
}

func BenchmarkExtension_ParallelScaling(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		points, err := e.ParallelScaling(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(points) > 0 {
			last := points[len(points)-1]
			b.ReportMetric(last.Throughput, "pred/s_max_workers")
			b.ReportMetric(last.Speedup, "speedup_x")
		}
	}
}

func BenchmarkExtension_IncrementalUpdate(b *testing.B) {
	mod := trainedModel(b)
	m := env().Data.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mod.WithUpdates([]cfsf.RatingUpdate{{
			User:  i % m.NumUsers(),
			Item:  (i * 17) % m.NumItems(),
			Value: float64(1 + i%5),
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtension_SaveLoad(b *testing.B) {
	mod := trainedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := mod.Save(&buf); err != nil {
			b.Fatal(err)
		}
		size := buf.Len()
		if _, err := core.Load(&buf); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(size), "snapshot_bytes")
		}
	}
}
