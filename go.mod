module cfsf

go 1.22
