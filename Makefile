GO ?= go

.PHONY: build test race lint vet fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own invariant checkers. It must exit clean: the
# baseline file is a migration tool, not a parking lot, and CI runs the
# same command as a blocking step.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cfsf-lint ./...

vet:
	$(GO) vet ./...

# bench runs the online-path and apply-path benchmarks with allocation
# stats — the same set CI archives into BENCH_predict.json and gates on
# (BenchmarkPredict must report 0 allocs/op).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictColdCache|BenchmarkRecommend' -benchmem ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentApply' -benchmem ./internal/lifecycle

fmt:
	gofmt -l -w .
