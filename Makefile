GO ?= go

.PHONY: build test race lint vet fmt bench load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own invariant checkers in parallel dependency
# order, writing the SARIF report beside the binaries. It must exit
# clean: the baseline file is a migration tool, not a parking lot, and
# CI runs the same command as a blocking step.
lint:
	$(GO) vet ./...
	mkdir -p bin
	$(GO) run ./cmd/cfsf-lint -parallel 0 -sarif bin/cfsf-lint.sarif ./...

vet:
	$(GO) vet ./...

# bench runs the online-path and apply-path benchmarks with allocation
# stats — the same set CI archives into BENCH_predict.json and gates on
# (BenchmarkPredict must report 0 allocs/op).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictColdCache|BenchmarkRecommend' -benchmem ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentApply' -benchmem ./internal/lifecycle

fmt:
	gofmt -l -w .

# load replays the smoke load scenarios (steady mix + kill-and-recover)
# against a freshly built cfsf-server and gates the results through
# cmd/benchjson — the same pipeline CI's loadgen-smoke job runs. The
# full-length committed scenarios run with plain
# `cfsf-loadgen -server-bin bin/cfsf-server <scenario>`.
load:
	mkdir -p bin
	$(GO) build -o bin/cfsf-server ./cmd/cfsf-server
	$(GO) build -o bin/cfsf-loadgen ./cmd/cfsf-loadgen
	bin/cfsf-loadgen -server-bin bin/cfsf-server -duration-ms 3000 -qps 60 -bench steady killrecover | tee loadgen-bench.txt
	$(GO) run ./cmd/benchjson \
		-max 'BenchmarkLoadgen/steady/(predict|recommend|rate|batch)$$:err-rate=0.001' \
		-max 'BenchmarkLoadgen/killrecover/(predict|recommend|rate)$$:err-rate=0.01' \
		-max 'BenchmarkLoadgen/killrecover/recovery$$:recovery-ms=30000' \
		-max 'BenchmarkLoadgen/(steady|killrecover)/drain$$:drain-ms=10000' \
		-o BENCH_loadgen.json < loadgen-bench.txt
