GO ?= go

.PHONY: build test race lint vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own invariant checkers. It must exit clean: the
# baseline file is a migration tool, not a parking lot, and CI runs the
# same command as a blocking step.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cfsf-lint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
