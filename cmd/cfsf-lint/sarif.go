package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"cfsf/internal/analysis"
)

// SARIF 2.1.0 output, minimal but schema-valid: one run, one rule per
// active analyzer, one result per finding. GitHub code scanning and
// most SARIF viewers accept exactly this subset.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(path string, active []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(active))
	for _, a := range active {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	cwd, _ := os.Getwd()
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
		}
		if d.Pos.Filename != "" {
			uri := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, uri); err == nil && !filepath.IsAbs(rel) {
					uri = rel
				}
			}
			phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)}}
			if d.Pos.Line > 0 {
				phys.Region = &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
			}
			r.Locations = []sarifLocation{{PhysicalLocation: phys}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cfsf-lint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
