package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfsf/internal/analysis"
)

// violatingModule writes a throwaway module with one walerr violation
// (a silently discarded Sync on a write handle) and returns its root.
func violatingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "os"

func main() {
	f, err := os.Create("out.txt")
	if err != nil {
		return
	}
	f.Sync()
	_ = f.Close()
}
`)
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCleanAtHead(t *testing.T) {
	// The repo's own invariant: cfsf-lint reports nothing on HEAD, with
	// no baseline. This is the same gate CI applies.
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, "../..", &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cfsf-lint on HEAD: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("cfsf-lint on HEAD printed findings:\n%s", stdout.String())
	}
}

func TestViolationExitsNonZero(t *testing.T) {
	dir := violatingModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "Sync is silently discarded") {
		t.Fatalf("missing walerr finding in output:\n%s", stdout.String())
	}
}

func TestJSONOutputShape(t *testing.T) {
	dir := violatingModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "walerr" {
		t.Errorf("Analyzer = %q, want walerr", d.Analyzer)
	}
	if d.Package != "lintfixture" {
		t.Errorf("Package = %q, want lintfixture", d.Package)
	}
	if filepath.Base(d.Pos.Filename) != "main.go" || d.Pos.Line == 0 {
		t.Errorf("Pos = %+v, want main.go with a line number", d.Pos)
	}
	if d.Message == "" {
		t.Errorf("empty Message")
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintclean\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "main.go"), "package main\n\nfunc main() {}\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, dir, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("clean -json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0", len(diags))
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := violatingModule(t)
	baseline := filepath.Join(t.TempDir(), "baseline.txt")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "walerr|lintfixture|main.go|") {
		t.Fatalf("baseline missing expected entry:\n%s", data)
	}

	// With the baseline, the same findings are suppressed and the run is
	// clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("baselined run printed findings:\n%s", stdout.String())
	}

	// Without it, the finding is back: the baseline suppresses, it does
	// not erase.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, dir, &stdout, &stderr); code != 1 {
		t.Fatalf("unbaselined run exit = %d, want 1", code)
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, "../..", &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
