package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfsf/internal/analysis"
)

// violatingModule writes a throwaway module with one walerr violation
// (a silently discarded Sync on a write handle) and returns its root.
func violatingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "os"

func main() {
	f, err := os.Create("out.txt")
	if err != nil {
		return
	}
	f.Sync()
	_ = f.Close()
}
`)
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCleanAtHead(t *testing.T) {
	// The repo's own invariant: cfsf-lint reports nothing on HEAD, with
	// no baseline. This is the same gate CI applies.
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, "../..", &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cfsf-lint on HEAD: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("cfsf-lint on HEAD printed findings:\n%s", stdout.String())
	}
}

func TestViolationExitsNonZero(t *testing.T) {
	dir := violatingModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "Sync is silently discarded") {
		t.Fatalf("missing walerr finding in output:\n%s", stdout.String())
	}
}

func TestJSONOutputShape(t *testing.T) {
	dir := violatingModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "walerr" {
		t.Errorf("Analyzer = %q, want walerr", d.Analyzer)
	}
	if d.Package != "lintfixture" {
		t.Errorf("Package = %q, want lintfixture", d.Package)
	}
	if filepath.Base(d.Pos.Filename) != "main.go" || d.Pos.Line == 0 {
		t.Errorf("Pos = %+v, want main.go with a line number", d.Pos)
	}
	if d.Message == "" {
		t.Errorf("empty Message")
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintclean\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "main.go"), "package main\n\nfunc main() {}\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, dir, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("clean -json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0", len(diags))
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := violatingModule(t)
	baseline := filepath.Join(t.TempDir(), "baseline.txt")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "walerr|lintfixture|main.go|") {
		t.Fatalf("baseline missing expected entry:\n%s", data)
	}

	// With the baseline, the same findings are suppressed and the run is
	// clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("baselined run printed findings:\n%s", stdout.String())
	}

	// Without it, the finding is back: the baseline suppresses, it does
	// not erase.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, dir, &stdout, &stderr); code != 1 {
		t.Fatalf("unbaselined run exit = %d, want 1", code)
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, "../..", &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBaselinePruneAndWarn(t *testing.T) {
	dir := violatingModule(t)
	baseline := filepath.Join(t.TempDir(), "baseline.txt")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr:\n%s", code, stderr.String())
	}

	// Plant a stale entry that no current finding matches.
	const stale = "walerr|lintfixture|gone.go|a finding that no longer exists"
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, baseline, string(data)+stale+"\n")

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "pruning stale entry: "+stale) {
		t.Fatalf("missing prune warning on stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "pruned 1 stale entry") {
		t.Fatalf("missing prune summary on stderr:\n%s", stderr.String())
	}

	// The file was rewritten: the stale entry is gone, the live one kept.
	rewritten, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rewritten), stale) {
		t.Fatalf("stale entry survived the rewrite:\n%s", rewritten)
	}
	if !strings.Contains(string(rewritten), "walerr|lintfixture|main.go|") {
		t.Fatalf("live entry was lost in the rewrite:\n%s", rewritten)
	}

	// Idempotence: a second run prunes nothing and stays clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("second baselined run exit = %d; stderr:\n%s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "pruning") {
		t.Fatalf("second run pruned again:\n%s", stderr.String())
	}
}

func TestSARIFOutput(t *testing.T) {
	dir := violatingModule(t)
	sarifFile := filepath.Join(t.TempDir(), "findings.sarif")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", sarifFile, "./..."}, dir, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}

	data, err := os.ReadFile(sarifFile)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, data)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != len(analyzers) {
		t.Errorf("got %d rules, want one per analyzer (%d)", len(rules), len(analyzers))
	}
	results := log.Runs[0].Results
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1: %+v", len(results), results)
	}
	r := results[0]
	if r.RuleID != "walerr" {
		t.Errorf("ruleId = %q, want walerr", r.RuleID)
	}
	if r.Level != "error" {
		t.Errorf("level = %q, want error", r.Level)
	}
	if len(r.Locations) != 1 {
		t.Fatalf("got %d locations, want 1", len(r.Locations))
	}
	loc := r.Locations[0].PhysicalLocation
	if filepath.Base(loc.ArtifactLocation.URI) != "main.go" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
		t.Errorf("artifact URI = %q, want a slashed path to main.go", loc.ArtifactLocation.URI)
	}
	if loc.Region == nil || loc.Region.StartLine == 0 {
		t.Errorf("region = %+v, want a start line", loc.Region)
	}
}

func TestEnableDisable(t *testing.T) {
	dir := violatingModule(t)

	// Disabling the only analyzer with a finding makes the run clean.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-disable", "walerr", "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-disable walerr exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}

	// Enabling only an unrelated analyzer skips walerr too.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-enable", "lockcheck", "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-enable lockcheck exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}

	// Enabling walerr explicitly still reports it.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-enable", "walerr", "./..."}, dir, &stdout, &stderr); code != 1 {
		t.Fatalf("-enable walerr exit = %d, want 1", code)
	}

	// Typos cannot silently skip a gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-disable", "wallerr", "./..."}, dir, &stdout, &stderr); code != 2 {
		t.Fatalf("-disable with unknown name exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "wallerr"`) {
		t.Fatalf("missing unknown-analyzer error:\n%s", stderr.String())
	}

	// Enabling and disabling the same set leaves nothing to run.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-enable", "walerr", "-disable", "walerr", "./..."}, dir, &stdout, &stderr); code != 2 {
		t.Fatalf("empty selection exit = %d, want 2", code)
	}
}

// TestEveryAnalyzerHasFixtures is the registry meta-test: each analyzer
// wired into the driver must carry at least one analysistest fixture
// package, so a new analyzer cannot land untested.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range analyzers {
		fixtures := filepath.Join("..", "..", "internal", "analysis", a.Name, "testdata", "src")
		entries, err := os.ReadDir(fixtures)
		if err != nil {
			t.Errorf("analyzer %s: no fixture directory: %v", a.Name, err)
			continue
		}
		var pkgs int
		for _, e := range entries {
			if e.IsDir() {
				pkgs++
			}
		}
		if pkgs == 0 {
			t.Errorf("analyzer %s: %s has no fixture packages", a.Name, fixtures)
		}
	}
}
