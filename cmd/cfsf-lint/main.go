// Command cfsf-lint runs the repo's invariant analyzers (see
// internal/analysis) over go-list package patterns and reports findings.
//
// Usage:
//
//	cfsf-lint [-json] [-sarif file] [-baseline file] [-write-baseline file]
//	          [-enable list] [-disable list] [-parallel n]
//	          [-update-wire-golden] [patterns...]
//
// Patterns default to ./... . Exit status: 0 when clean, 1 when findings
// remain, 2 on usage or load errors.
//
// Packages are analyzed in dependency order with cross-package facts
// (function and field summaries) flowing from imports to importers, on
// -parallel workers (0 = one per CPU). -enable/-disable take
// comma-separated analyzer names; -sarif writes the findings as SARIF
// 2.1.0 for code-scanning upload alongside the normal output.
//
// Scoping: mapiterfloat and nondeterm police the crash-replay guarantee,
// so they run only on replay-path packages (core, smoothing, similarity,
// cluster, wal, lifecycle) — the serving layer may read wall clocks and
// iterate maps freely. All other analyzers run everywhere.
//
// A baseline file (one "analyzer|package|file|message" line per tolerated
// finding, no line numbers so unrelated edits don't invalidate it)
// suppresses known findings; -write-baseline records the current set.
// Entries that no longer match any finding are pruned from the file with
// a warning — a baseline only ever shrinks. Policy: the baseline must
// stay empty — it exists for incident bisection, not for parking debt.
// New suppressions go through //cfsf:* annotations with justification
// strings instead.
//
// -update-wire-golden rewrites each package's wire_golden.json from the
// current source instead of checking against it; review the diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cfsf/internal/analysis"
	"cfsf/internal/analysis/atomiccheck"
	"cfsf/internal/analysis/cowcheck"
	"cfsf/internal/analysis/lockcheck"
	"cfsf/internal/analysis/lockorder"
	"cfsf/internal/analysis/mapiterfloat"
	"cfsf/internal/analysis/nondeterm"
	"cfsf/internal/analysis/poolescape"
	"cfsf/internal/analysis/walerr"
	"cfsf/internal/analysis/wirecompat"
)

func main() {
	os.Exit(run(os.Args[1:], "", os.Stdout, os.Stderr))
}

// replayPackages are the packages on the WAL-replay path: recovery
// replays journaled micro-batches through them and must reproduce the
// serving model bit for bit.
var replayPackages = map[string]bool{
	"cfsf/internal/core":       true,
	"cfsf/internal/smoothing":  true,
	"cfsf/internal/similarity": true,
	"cfsf/internal/cluster":    true,
	"cfsf/internal/wal":        true,
	"cfsf/internal/lifecycle":  true,
}

// replayOnly names the analyzers scoped to replayPackages.
var replayOnly = map[string]bool{
	"mapiterfloat": true,
	"nondeterm":    true,
}

var analyzers = []*analysis.Analyzer{
	atomiccheck.Analyzer,
	cowcheck.Analyzer,
	lockcheck.Analyzer,
	lockorder.Analyzer,
	mapiterfloat.Analyzer,
	nondeterm.Analyzer,
	poolescape.Analyzer,
	walerr.Analyzer,
	wirecompat.Analyzer,
}

// run is the driver body, factored from main for testing. dir is the
// directory go list runs in ("" = current).
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cfsf-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "suppress findings listed in this baseline file (stale entries are pruned)")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	parallel := fs.Int("parallel", 0, "package-analysis workers (0 = one per CPU, 1 = sequential)")
	updateWire := fs.Bool("update-wire-golden", false, "rewrite wire_golden.json files from current source instead of checking")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cfsf-lint [flags] [patterns...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	active, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "cfsf-lint:", err)
		return 2
	}
	wirecompat.Update = *updateWire

	pkgs, err := analysis.LoadPackages(dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, active, analysis.RunOptions{
		Workers: *parallel,
		Filter: func(a *analysis.Analyzer, pkgPath string) bool {
			return !replayOnly[a.Name] || replayPackages[pkgPath]
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "cfsf-lint: wrote %d baseline entries to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		diags, err = applyBaseline(*baselinePath, diags, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, active, diags); err != nil {
			fmt.Fprintln(stderr, "cfsf-lint: sarif:", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cfsf-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable, rejecting unknown names so
// a typo cannot silently skip a gate.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := map[string]bool{}
		if list == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		active = append(active, a)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("flag selection leaves no analyzers enabled")
	}
	return active, nil
}

// baselineKey identifies a finding without its line number, so the
// baseline survives unrelated edits to the same file.
func baselineKey(d analysis.Diagnostic) string {
	return strings.Join([]string{d.Analyzer, d.Package, filepath.Base(d.Pos.Filename), d.Message}, "|")
}

// applyBaseline suppresses baselined findings and prunes entries that
// no longer match anything: each pruned entry is warned on stderr and
// the file is rewritten without it, so the baseline only ever shrinks.
func applyBaseline(path string, diags []analysis.Diagnostic, stderr io.Writer) ([]analysis.Diagnostic, error) {
	base, err := loadBaseline(path)
	if err != nil {
		return nil, err
	}
	used := map[string]bool{}
	kept := diags[:0]
	for _, d := range diags {
		k := baselineKey(d)
		if base[k] {
			used[k] = true
		} else {
			kept = append(kept, d)
		}
	}
	var stale []string
	for k := range base {
		if !used[k] {
			stale = append(stale, k)
		}
	}
	if len(stale) > 0 {
		sort.Strings(stale)
		for _, k := range stale {
			fmt.Fprintf(stderr, "cfsf-lint: baseline: pruning stale entry: %s\n", k)
		}
		var remaining []analysis.Diagnostic
		for k := range used {
			// Reconstruct enough of a diagnostic for saveBaseline's keying:
			// the key IS the serialized form, so parse it back.
			parts := strings.SplitN(k, "|", 4)
			if len(parts) == 4 {
				remaining = append(remaining, analysis.Diagnostic{
					Analyzer: parts[0],
					Package:  parts[1],
					Pos:      token.Position{Filename: parts[2]},
					Message:  parts[3],
				})
			}
		}
		if err := saveBaseline(path, remaining); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "cfsf-lint: baseline: pruned %d stale entr%s from %s\n",
			len(stale), plural(len(stale), "y", "ies"), path)
	}
	return kept, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cfsf-lint: baseline: %w", err)
	}
	defer f.Close()
	base := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cfsf-lint: baseline: %w", err)
	}
	return base, nil
}

func saveBaseline(path string, diags []analysis.Diagnostic) error {
	seen := map[string]bool{}
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		k := baselineKey(d)
		if !seen[k] {
			seen[k] = true
			lines = append(lines, k)
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# cfsf-lint baseline: analyzer|package|file|message per line.\n")
	b.WriteString("# Policy: keep this file empty; fix or annotate instead of baselining.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("cfsf-lint: baseline: %w", err)
	}
	return nil
}
