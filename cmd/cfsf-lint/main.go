// Command cfsf-lint runs the repo's invariant analyzers (see
// internal/analysis) over go-list package patterns and reports findings.
//
// Usage:
//
//	cfsf-lint [-json] [-baseline file] [-write-baseline file] [patterns...]
//
// Patterns default to ./... . Exit status: 0 when clean, 1 when findings
// remain, 2 on usage or load errors.
//
// Scoping: mapiterfloat and nondeterm police the crash-replay guarantee,
// so they run only on replay-path packages (core, smoothing, similarity,
// cluster, wal, lifecycle) — the serving layer may read wall clocks and
// iterate maps freely. lockcheck and walerr run everywhere.
//
// A baseline file (one "analyzer|package|file|message" line per tolerated
// finding, no line numbers so unrelated edits don't invalidate it)
// suppresses known findings; -write-baseline records the current set.
// Policy: the baseline must stay empty — it exists for incident
// bisection, not for parking debt. New suppressions go through
// //cfsf:* annotations with justification strings instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cfsf/internal/analysis"
	"cfsf/internal/analysis/lockcheck"
	"cfsf/internal/analysis/mapiterfloat"
	"cfsf/internal/analysis/nondeterm"
	"cfsf/internal/analysis/walerr"
)

func main() {
	os.Exit(run(os.Args[1:], "", os.Stdout, os.Stderr))
}

// replayPackages are the packages on the WAL-replay path: recovery
// replays journaled micro-batches through them and must reproduce the
// serving model bit for bit.
var replayPackages = map[string]bool{
	"cfsf/internal/core":       true,
	"cfsf/internal/smoothing":  true,
	"cfsf/internal/similarity": true,
	"cfsf/internal/cluster":    true,
	"cfsf/internal/wal":        true,
	"cfsf/internal/lifecycle":  true,
}

// replayOnly names the analyzers scoped to replayPackages.
var replayOnly = map[string]bool{
	"mapiterfloat": true,
	"nondeterm":    true,
}

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	mapiterfloat.Analyzer,
	nondeterm.Analyzer,
	walerr.Analyzer,
}

// run is the driver body, factored from main for testing. dir is the
// directory go list runs in ("" = current).
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cfsf-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	baselinePath := fs.String("baseline", "", "suppress findings listed in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cfsf-lint [-json] [-baseline file] [-write-baseline file] [patterns...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pkgs, err := analysis.LoadPackages(dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers, func(a *analysis.Analyzer, pkgPath string) bool {
		return !replayOnly[a.Name] || replayPackages[pkgPath]
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "cfsf-lint: wrote %d baseline entries to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		kept := diags[:0]
		for _, d := range diags {
			if !base[baselineKey(d)] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cfsf-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// baselineKey identifies a finding without its line number, so the
// baseline survives unrelated edits to the same file.
func baselineKey(d analysis.Diagnostic) string {
	return strings.Join([]string{d.Analyzer, d.Package, filepath.Base(d.Pos.Filename), d.Message}, "|")
}

func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cfsf-lint: baseline: %w", err)
	}
	defer f.Close()
	base := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cfsf-lint: baseline: %w", err)
	}
	return base, nil
}

func saveBaseline(path string, diags []analysis.Diagnostic) error {
	seen := map[string]bool{}
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		k := baselineKey(d)
		if !seen[k] {
			seen[k] = true
			lines = append(lines, k)
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# cfsf-lint baseline: analyzer|package|file|message per line.\n")
	b.WriteString("# Policy: keep this file empty; fix or annotate instead of baselining.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("cfsf-lint: baseline: %w", err)
	}
	return nil
}
