// cfsf-bench regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic dataset and prints them in
// the paper's layout. Select individual experiments with flags, or run
// everything with -all. EXPERIMENTS.md is produced from this output.
//
// Usage:
//
//	cfsf-bench -all
//	cfsf-bench -table2 -fig3
//	cfsf-bench -all -fraction 0.25   # subsample targets for a quick pass
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cfsf/internal/experiments"
	"cfsf/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfsf-bench: ")

	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table I: dataset statistics")
		table2   = flag.Bool("table2", false, "Table II: CFSF vs SUR vs SIR")
		table3   = flag.Bool("table3", false, "Table III: state-of-the-art comparison")
		fig2     = flag.Bool("fig2", false, "Fig. 2: accuracy vs M")
		fig3     = flag.Bool("fig3", false, "Fig. 3: accuracy vs K")
		fig4     = flag.Bool("fig4", false, "Fig. 4: accuracy vs C")
		fig5     = flag.Bool("fig5", false, "Fig. 5: response time vs testset size")
		fig6     = flag.Bool("fig6", false, "Fig. 6: sensitivity of lambda")
		fig7     = flag.Bool("fig7", false, "Fig. 7: sensitivity of delta")
		fig8     = flag.Bool("fig8", false, "Fig. 8: sensitivity of w")
		ablate   = flag.Bool("ablations", false, "design-choice ablations")
		topn     = flag.Bool("topn", false, "extension: top-N ranking quality")
		extgrid  = flag.Bool("extgrid", false, "extension: MAE vs post-2009 baselines")
		scaling  = flag.Bool("scaling", false, "extension: parallel throughput scaling")
		content  = flag.Bool("content", false, "extension: content-blended GIS")
		erranal  = flag.Bool("erroranalysis", false, "extension: MAE by item popularity")
		sig      = flag.Bool("significance", false, "extension: paired t-tests vs each method")
		temporal = flag.Bool("temporal", false, "extension: time-decay sweep on drifted data")
		divers   = flag.Bool("diversity", false, "extension: MMR diversity trade-off")
		fraction = flag.Float64("fraction", 1.0, "fraction of test targets to evaluate (speed/fidelity trade)")
		seed     = flag.Int64("seed", 1, "dataset generator seed")
	)
	flag.Parse()

	if !(*all || *table1 || *table2 || *table3 || *fig2 || *fig3 || *fig4 ||
		*fig5 || *fig6 || *fig7 || *fig8 || *ablate || *topn || *extgrid || *scaling || *content || *erranal || *sig || *temporal || *divers) {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	env := experiments.NewEnv()
	env.TargetFraction = *fraction
	if *seed != 1 {
		cfg := env.Data.Config
		cfg.Seed = *seed
		env.Data = synth.MustGenerate(cfg)
	}
	log.Printf("dataset ready: %d users × %d items, %d ratings (%.1fs)",
		env.Data.Matrix.NumUsers(), env.Data.Matrix.NumItems(),
		env.Data.Matrix.NumRatings(), time.Since(start).Seconds())

	section := func(on bool, name string, run func() error) {
		if !on && !*all {
			return
		}
		t := time.Now()
		if err := run(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		log.Printf("%s done in %.1fs", name, time.Since(t).Seconds())
	}

	section(*table1, "table1", func() error {
		fmt.Println(env.TableI())
		return nil
	})
	section(*table2, "table2", func() error {
		_, tbl, err := env.TableII()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	section(*table3, "table3", func() error {
		_, tbl, err := env.TableIII()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	section(*fig2, "fig2", curveSection(env.Fig2M, "Fig. 2 — MAE vs M similar items (ML_300)", "M"))
	section(*fig3, "fig3", curveSection(env.Fig3K, "Fig. 3 — MAE vs K like-minded users (ML_300)", "K"))
	section(*fig4, "fig4", curveSection(env.Fig4C, "Fig. 4 — MAE vs C user clusters (ML_300)", "C"))
	section(*fig5, "fig5", func() error {
		points, err := env.Fig5ResponseTime()
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig5Table(points))
		return nil
	})
	section(*fig6, "fig6", curveSection(env.Fig6Lambda, "Fig. 6 — sensitivity of λ (ML_300)", "λ"))
	section(*fig7, "fig7", curveSection(env.Fig7Delta, "Fig. 7 — sensitivity of δ (ML_300)", "δ"))
	section(*fig8, "fig8", curveSection(env.Fig8W, "Fig. 8 — sensitivity of w = 1−ε (ML_300)", "w"))
	section(*ablate, "ablations", func() error {
		results, err := env.Ablations()
		if err != nil {
			return err
		}
		fmt.Println(experiments.AblationTable(results))
		return nil
	})
	section(*topn, "topn", func() error {
		rows, err := env.TopNRanking(nil, 10)
		if err != nil {
			return err
		}
		fmt.Println(experiments.TopNTable(10, rows))
		return nil
	})
	section(*extgrid, "extgrid", func() error {
		_, tbl, err := env.ExtensionGrid()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	section(*scaling, "scaling", func() error {
		points, err := env.ParallelScaling(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ScalingTable(points))
		return nil
	})
	section(*content, "content", func() error {
		points, err := env.ContentBoost(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ContentTable(points))
		return nil
	})
	section(*erranal, "erroranalysis", func() error {
		buckets, err := env.ErrorAnalysis(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ErrorAnalysisTable(nil, buckets))
		return nil
	})
	section(*sig, "significance", func() error {
		rows, err := env.Significance(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.SignificanceTable(rows))
		return nil
	})
	section(*temporal, "temporal", func() error {
		points, err := env.Temporal(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.TemporalTable(points))
		return nil
	})
	section(*divers, "diversity", func() error {
		points, err := env.Diversity(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.DiversityTable(points))
		return nil
	})

	log.Printf("all requested experiments finished in %.1fs", time.Since(start).Seconds())
}

func curveSection(run func() ([]experiments.FigureCurve, error), title, param string) func() error {
	return func() error {
		curves, err := run()
		if err != nil {
			return err
		}
		fmt.Println(experiments.CurveTable(title, param, curves))
		return nil
	}
}
