// cfsf is the command-line front end of the library: train a CFSF model
// on a u.data file (or the built-in synthetic dataset) and predict,
// recommend or evaluate.
//
// Usage:
//
//	cfsf predict   -data u.data -user 12 -item 97
//	cfsf recommend -data u.data -user 12 -n 10
//	cfsf evaluate  -data u.data -method cfsf -train 300 -test 200 -given 10
//	cfsf explain   -data u.data -user 12 -item 97
//	cfsf compare   -data u.data -a cfsf -b sur
//	cfsf topn      -data u.data -method cfsf -n 10
//	cfsf cv        -data u.data -method cfsf -k 5
//	cfsf stats     -data u.data
//	cfsf save      -data u.data -out model.gob
//
// Omit -data (or pass -data synth) to use the built-in generator; .csv
// files parse as MovieLens ratings.csv, everything else as u.data. All
// user/item ids on the command line are 0-based dense ids, matching the
// order of first appearance in the file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cfsf"
	"cfsf/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfsf: ")

	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "predict":
		runPredict(args)
	case "recommend":
		runRecommend(args)
	case "evaluate":
		runEvaluate(args)
	case "stats":
		runStats(args)
	case "save":
		runSave(args)
	case "explain":
		runExplain(args)
	case "compare":
		runCompare(args)
	case "topn":
		runTopN(args)
	case "cv":
		runCV(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cfsf <command> [flags]

commands:
  predict    predict one rating           (-data|-model -user -item)
  recommend  top-N recommendations        (-data|-model -user -n)
  evaluate   MAE under the Given-N split  (-data -method -train -test -given)
  stats      dataset statistics           (-data)
  save       train and save a model       (-data -out model.gob)
  explain    explain one prediction       (-data|-model -user -item)
  compare    two methods + paired t-test  (-data -a cfsf -b sur ...)
  topn       ranking quality P@N/R@N/NDCG (-data -method -n)
  cv         k-fold cross-validation      (-data -method -k)

pass -data <u.data path> or omit for the built-in synthetic dataset`)
	os.Exit(2)
}

// loadMatrix reads the dataset named by -data ("" or "synth" = generated).
func loadMatrix(path string, seed int64) *cfsf.Matrix {
	if path == "" || path == "synth" {
		cfg := cfsf.DefaultSynthConfig()
		cfg.Seed = seed
		return cfsf.GenerateSynthetic(cfg).Matrix
	}
	m, err := cfsf.ReadRatingsAuto(path)
	if err != nil {
		log.Fatalf("load %s: %v", path, err)
	}
	return m
}

// modelFlags registers the shared CFSF hyperparameter flags.
func modelFlags(fs *flag.FlagSet) *cfsf.Config {
	cfg := cfsf.DefaultConfig()
	fs.IntVar(&cfg.M, "M", cfg.M, "similar items")
	fs.IntVar(&cfg.K, "K", cfg.K, "like-minded users")
	fs.IntVar(&cfg.Clusters, "C", cfg.Clusters, "user clusters")
	fs.Float64Var(&cfg.Lambda, "lambda", cfg.Lambda, "SUR' weight in the fusion")
	fs.Float64Var(&cfg.Delta, "delta", cfg.Delta, "SUIR' weight in the fusion")
	fs.Float64Var(&cfg.OriginalWeight, "epsilon", cfg.OriginalWeight, "weight of original ratings (Eq. 11)")
	return &cfg
}

func runPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	data := fs.String("data", "", "u.data path, or synth")
	modelPath := fs.String("model", "", "saved model path (skips training)")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	user := fs.Int("user", 0, "user id (0-based)")
	item := fs.Int("item", 0, "item id (0-based)")
	cfg := modelFlags(fs)
	fs.Parse(args)

	model := loadOrTrain(*modelPath, *data, *seed, *cfg)
	p := model.PredictDetailed(*user, *item)
	fmt.Printf("prediction(user=%d, item=%d) = %.3f\n", *user, *item, p.Value)
	fmt.Printf("  SIR'=%.3f(%v) SUR'=%.3f(%v) SUIR'=%.3f(%v) local=%dx%d\n",
		p.SIR, p.HasSIR, p.SUR, p.HasSUR, p.SUIR, p.HasSUIR, p.ItemsUsed, p.UsersUsed)
}

func runRecommend(args []string) {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	data := fs.String("data", "", "u.data path, or synth")
	modelPath := fs.String("model", "", "saved model path (skips training)")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	user := fs.Int("user", 0, "user id (0-based)")
	n := fs.Int("n", 10, "number of recommendations")
	cfg := modelFlags(fs)
	fs.Parse(args)

	model := loadOrTrain(*modelPath, *data, *seed, *cfg)
	for rank, rec := range model.Recommend(*user, *n) {
		fmt.Printf("%2d. item %-6d predicted %.3f\n", rank+1, rec.Item, rec.Score)
	}
}

func runEvaluate(args []string) {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	data := fs.String("data", "", "u.data path, or synth")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	method := fs.String("method", "cfsf", "cfsf or one of: sir sur sf scbpcc emdp pd am")
	nTrain := fs.Int("train", 300, "training users (first N)")
	nTest := fs.Int("test", 200, "test users (last N)")
	given := fs.Int("given", 10, "revealed ratings per test user")
	cfg := modelFlags(fs)
	fs.Parse(args)

	m := loadMatrix(*data, *seed)
	split, err := cfsf.MLSplit(m, *nTrain, *nTest, *given)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cfsf.Evaluate(pickMethod(*method, *cfg), split, cfsf.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method=%s train=%d given=%d targets=%d\n", *method, *nTrain, *given, res.NumTargets)
	fmt.Printf("MAE=%.4f RMSE=%.4f fit=%v predict=%v\n",
		res.MAE, res.RMSE, res.FitTime.Round(time.Millisecond), res.PredictTime.Round(time.Millisecond))
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	data := fs.String("data", "", "u.data path, or synth")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	fs.Parse(args)

	m := loadMatrix(*data, *seed)
	fmt.Printf("users     %d\n", m.NumUsers())
	fmt.Printf("items     %d\n", m.NumItems())
	fmt.Printf("ratings   %d\n", m.NumRatings())
	fmt.Printf("density   %.2f%%\n", 100*m.Density())
	fmt.Printf("avg/user  %.1f\n", m.AvgRatingsPerUser())
	fmt.Printf("scale     %g..%g\n", m.MinRating(), m.MaxRating())
	fmt.Printf("mean      %.3f\n", m.GlobalMean())
}

// runExplain prints the evidence behind one prediction.
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	data := fs.String("data", "", "ratings file (u.data or .csv), or synth")
	modelPath := fs.String("model", "", "saved model path (skips training)")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	user := fs.Int("user", 0, "user id (0-based)")
	item := fs.Int("item", 0, "item id (0-based)")
	top := fs.Int("top", 5, "evidence entries per side")
	cfg := modelFlags(fs)
	fs.Parse(args)

	model := loadOrTrain(*modelPath, *data, *seed, *cfg)
	fmt.Print(model.Explain(*user, *item, *top))
}

// runCompare evaluates two methods on the same split and reports the
// paired t-test over their absolute errors.
func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	data := fs.String("data", "", "ratings file (u.data or .csv), or synth")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	methodA := fs.String("a", "cfsf", "first method")
	methodB := fs.String("b", "sur", "second method")
	nTrain := fs.Int("train", 300, "training users (first N)")
	nTest := fs.Int("test", 200, "test users (last N)")
	given := fs.Int("given", 10, "revealed ratings per test user")
	cfg := modelFlags(fs)
	fs.Parse(args)

	m := loadMatrix(*data, *seed)
	split, err := cfsf.MLSplit(m, *nTrain, *nTest, *given)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := cfsf.Compare(pickMethod(*methodA, *cfg), pickMethod(*methodB, *cfg), split, cfsf.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s MAE=%.4f  vs  %s MAE=%.4f  (n=%d targets)\n",
		*methodA, cmp.MAEA, *methodB, cmp.MAEB, cmp.TTest.DF+1)
	verdict := "NOT significant"
	if cmp.TTest.Significant {
		verdict = "significant"
	}
	fmt.Printf("paired t-test: t=%.3f df=%d p=%.2g -> difference is %s at α=0.05\n",
		cmp.TTest.T, cmp.TTest.DF, cmp.TTest.P, verdict)
}

// runTopN evaluates top-N ranking quality under the Given-N protocol.
func runTopN(args []string) {
	fs := flag.NewFlagSet("topn", flag.ExitOnError)
	data := fs.String("data", "", "ratings file (u.data or .csv), or synth")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	method := fs.String("method", "cfsf", "cfsf or a baseline name")
	nTrain := fs.Int("train", 300, "training users (first N)")
	nTest := fs.Int("test", 200, "test users (last N)")
	given := fs.Int("given", 10, "revealed ratings per test user")
	n := fs.Int("n", 10, "list length")
	thr := fs.Float64("relevance", 4, "relevance threshold")
	cfg := modelFlags(fs)
	fs.Parse(args)

	m := loadMatrix(*data, *seed)
	split, err := cfsf.MLSplit(m, *nTrain, *nTest, *given)
	if err != nil {
		log.Fatal(err)
	}
	p := pickMethod(*method, *cfg)
	if err := p.Fit(split.Matrix); err != nil {
		log.Fatal(err)
	}
	r := cfsf.EvaluateRanking(p, split, cfsf.RankingOptions{N: *n, RelevanceThreshold: *thr})
	fmt.Printf("method=%s N=%d users=%d\n", *method, r.N, r.Users)
	fmt.Printf("Precision@%d=%.4f Recall@%d=%.4f NDCG@%d=%.4f\n",
		r.N, r.PrecisionAtN, r.N, r.RecallAtN, r.N, r.NDCGAtN)
}

// runCV runs k-fold cross-validation over the full matrix.
func runCV(args []string) {
	fs := flag.NewFlagSet("cv", flag.ExitOnError)
	data := fs.String("data", "", "ratings file (u.data or .csv), or synth")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	method := fs.String("method", "cfsf", "cfsf or a baseline name")
	k := fs.Int("k", 5, "number of folds")
	cfg := modelFlags(fs)
	fs.Parse(args)

	m := loadMatrix(*data, *seed)
	res, err := cfsf.CrossValidate(func() cfsf.Predictor {
		return pickMethod(*method, *cfg)
	}, m, *k, *seed, cfsf.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for f, mae := range res.FoldMAE {
		fmt.Printf("fold %d MAE=%.4f\n", f+1, mae)
	}
	fmt.Printf("mean MAE=%.4f ± %.4f (%d folds)\n", res.Mean, res.Std, *k)
}

// pickMethod builds a fresh predictor by name.
func pickMethod(name string, cfg cfsf.Config) cfsf.Predictor {
	if name == "cfsf" {
		return cfsf.NewPredictor(cfg)
	}
	p, err := cfsf.NewBaseline(name)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// runSave trains on the dataset and writes the model snapshot.
func runSave(args []string) {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	data := fs.String("data", "", "u.data path, or synth")
	seed := fs.Int64("seed", 1, "synthetic dataset seed")
	out := fs.String("out", "model.gob", "output path for the model snapshot")
	cfg := modelFlags(fs)
	fs.Parse(args)

	m := loadMatrix(*data, *seed)
	model := train(m, *cfg)
	if err := model.SaveFile(*out); err != nil {
		log.Fatalf("save %s: %v", *out, err)
	}
	log.Printf("model saved to %s", *out)
}

// loadOrTrain loads a saved model when -model is set, otherwise trains
// on the dataset.
func loadOrTrain(modelPath, data string, seed int64, cfg cfsf.Config) *cfsf.Model {
	if modelPath != "" {
		t := time.Now()
		model, err := core.LoadFile(modelPath)
		if err != nil {
			log.Fatalf("load model %s: %v", modelPath, err)
		}
		log.Printf("model loaded in %v", time.Since(t).Round(time.Millisecond))
		return model
	}
	return train(loadMatrix(data, seed), cfg)
}

func train(m *cfsf.Matrix, cfg cfsf.Config) *cfsf.Model {
	t := time.Now()
	model, err := cfsf.Train(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained in %v (GIS %v, clustering %v)", time.Since(t).Round(time.Millisecond),
		model.Stats().GISDuration.Round(time.Millisecond),
		model.Stats().ClusterDuration.Round(time.Millisecond))
	return model
}
