// mlgen generates a synthetic MovieLens-like dataset in the GroupLens
// u.data format (user \t item \t rating \t timestamp, 1-based ids) and
// prints its Table-I-style statistics. Side files with item titles and
// genres can be emitted for the recommendation examples.
//
// Usage:
//
//	mlgen -out u.data
//	mlgen -users 1000 -items 2000 -seed 7 -out big.data -items-out titles.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlgen: ")

	cfg := synth.DefaultConfig()
	var (
		out      = flag.String("out", "", "output path for the u.data file (default: stdout)")
		itemsOut = flag.String("items-out", "", "optional path for an item metadata TSV (id, title, genres)")
		statsOut = flag.Bool("stats", true, "print dataset statistics to stderr")
	)
	flag.IntVar(&cfg.Users, "users", cfg.Users, "number of users")
	flag.IntVar(&cfg.Items, "items", cfg.Items, "number of items")
	flag.IntVar(&cfg.Archetypes, "archetypes", cfg.Archetypes, "latent taste archetypes")
	flag.IntVar(&cfg.Genres, "genres", cfg.Genres, "genre vocabulary size")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.MinPerUser, "min-per-user", cfg.MinPerUser, "minimum ratings per user")
	flag.Float64Var(&cfg.MeanPerUser, "mean-per-user", cfg.MeanPerUser, "target mean ratings per user")
	flag.Float64Var(&cfg.NoiseStd, "noise", cfg.NoiseStd, "rating noise stddev")
	flag.Float64Var(&cfg.JunkProb, "junk", cfg.JunkProb, "probability of a pure-noise rating")
	flag.Parse()

	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *out == "" {
		if err := ratings.WriteUData(os.Stdout, data.Matrix); err != nil {
			log.Fatalf("write stdout: %v", err)
		}
	} else {
		if err := ratings.WriteUDataFile(*out, data.Matrix); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		log.Printf("wrote %d ratings to %s", data.Matrix.NumRatings(), *out)
	}

	if *itemsOut != "" {
		if err := writeItems(*itemsOut, data); err != nil {
			log.Fatalf("write %s: %v", *itemsOut, err)
		}
		log.Printf("wrote %d item records to %s", len(data.ItemTitles), *itemsOut)
	}

	if *statsOut {
		m := data.Matrix
		fmt.Fprintf(os.Stderr, "users=%d items=%d ratings=%d density=%.2f%% avg/user=%.1f seed=%d\n",
			m.NumUsers(), m.NumItems(), m.NumRatings(), 100*m.Density(),
			m.AvgRatingsPerUser(), cfg.Seed)
	}
}

// writeItems emits one line per item: 1-based id, tab, title, tab,
// pipe-separated genre names.
func writeItems(path string, d *synth.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i, title := range d.ItemTitles {
		names := make([]string, len(d.ItemGenres[i]))
		for k, g := range d.ItemGenres[i] {
			names[k] = d.GenreNames[g]
		}
		fmt.Fprintf(w, "%d\t%s\t%s\n", i+1, title, strings.Join(names, "|"))
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
