// cfsf-server is a JSON-over-HTTP recommendation service built on the
// public API; the handlers live in internal/server. The expensive
// offline phase runs once at startup, the cheap online phase serves every
// request from the immutable model; /metrics exposes per-endpoint
// counts and latency percentiles so the online cost is measurable.
//
// Usage:
//
//	cfsf-server -addr :8080 -data u.data
//	cfsf-server -model model.gob            # load a saved model instead
//	cfsf-server -debug                      # also mount /debug/pprof
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get -shutdown-timeout to finish before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cfsf"
	"cfsf/internal/core"
	"cfsf/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfsf-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "", "u.data path, or empty/synth for the built-in dataset")
		modelPath = flag.String("model", "", "load a model saved with `cfsf save` instead of training")
		seed      = flag.Int64("seed", 1, "synthetic dataset seed")

		debug           = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		growthMargin    = flag.Int("growth-margin", 1, "how far past current matrix bounds a /rate id may grow the model")
		maxBody         = flag.Int64("max-body", 1<<20, "request body size limit in bytes for /rate and /predict/batch")
		maxBatch        = flag.Int("max-batch", 1024, "maximum pairs per /predict/batch request")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout")
		writeTimeout    = flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout (raise when profiling via /debug/pprof/profile)")
		idleTimeout     = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		maxHeaderBytes  = flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
		shutdownTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	var model *cfsf.Model
	var titles []string
	if *modelPath != "" {
		t := time.Now()
		var err error
		model, err = core.LoadFile(*modelPath)
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		log.Printf("loaded model in %v (%d users × %d items)",
			time.Since(t).Round(time.Millisecond),
			model.Matrix().NumUsers(), model.Matrix().NumItems())
	} else {
		var m *cfsf.Matrix
		if *data == "" || *data == "synth" {
			cfg := cfsf.DefaultSynthConfig()
			cfg.Seed = *seed
			d := cfsf.GenerateSynthetic(cfg)
			m, titles = d.Matrix, d.ItemTitles
		} else {
			var err error
			m, err = cfsf.ReadUDataFile(*data)
			if err != nil {
				log.Fatalf("load %s: %v", *data, err)
			}
		}
		t := time.Now()
		var err error
		model, err = cfsf.Train(m, cfsf.DefaultConfig())
		if err != nil {
			log.Fatalf("train: %v", err)
		}
		log.Printf("offline phase complete in %v (%d users × %d items)",
			time.Since(t).Round(time.Millisecond), m.NumUsers(), m.NumItems())
	}

	srv := server.NewWithOptions(model, titles, server.Options{
		GrowthMargin: *growthMargin,
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
		Debug:        *debug,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (debug=%v)", *addr, *debug)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("signal received, draining for up to %v", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("shutdown complete")
	}
}
