// cfsf-server is a minimal JSON-over-HTTP recommendation service built on
// the public API; the handlers live in internal/server. The expensive
// offline phase runs once at startup, the cheap online phase serves every
// request from the immutable model.
//
// Usage:
//
//	cfsf-server -addr :8080 -data u.data
//	cfsf-server -model model.gob            # load a saved model instead
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"cfsf"
	"cfsf/internal/core"
	"cfsf/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfsf-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "", "u.data path, or empty/synth for the built-in dataset")
		modelPath = flag.String("model", "", "load a model saved with `cfsf save` instead of training")
		seed      = flag.Int64("seed", 1, "synthetic dataset seed")
	)
	flag.Parse()

	var model *cfsf.Model
	var titles []string
	if *modelPath != "" {
		t := time.Now()
		var err error
		model, err = core.LoadFile(*modelPath)
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		log.Printf("loaded model in %v (%d users × %d items)",
			time.Since(t).Round(time.Millisecond),
			model.Matrix().NumUsers(), model.Matrix().NumItems())
	} else {
		var m *cfsf.Matrix
		if *data == "" || *data == "synth" {
			cfg := cfsf.DefaultSynthConfig()
			cfg.Seed = *seed
			d := cfsf.GenerateSynthetic(cfg)
			m, titles = d.Matrix, d.ItemTitles
		} else {
			var err error
			m, err = cfsf.ReadUDataFile(*data)
			if err != nil {
				log.Fatalf("load %s: %v", *data, err)
			}
		}
		t := time.Now()
		var err error
		model, err = cfsf.Train(m, cfsf.DefaultConfig())
		if err != nil {
			log.Fatalf("train: %v", err)
		}
		log.Printf("offline phase complete in %v (%d users × %d items)",
			time.Since(t).Round(time.Millisecond), m.NumUsers(), m.NumItems())
	}

	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(model, titles).Handler()))
}
