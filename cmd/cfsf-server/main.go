// cfsf-server is a JSON-over-HTTP recommendation service built on the
// public API; the handlers live in internal/server. The expensive
// offline phase runs once at startup, the cheap online phase serves every
// request from the immutable model; /metrics exposes per-endpoint
// counts and latency percentiles so the online cost is measurable.
//
// Usage:
//
//	cfsf-server -addr :8080 -data u.data
//	cfsf-server -model model.gob            # load a saved model instead
//	cfsf-server -data-dir ./cfsf-data       # durable mode: WAL + snapshots
//	cfsf-server -shards 30                  # user-cluster count C = shard count
//	cfsf-server -debug                      # also mount /debug/pprof
//
// With -data-dir the server becomes crash-safe and stateful: every /rate
// is journaled to a write-ahead log before it is acknowledged, applied
// to the model in micro-batches, and captured by rotating snapshots; a
// restart loads the newest snapshot and replays the WAL tail, so a
// SIGKILL loses nothing (see the README's "Durability & operations").
// The offline phase then only runs on the very first boot — later boots
// recover from the snapshot.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get -shutdown-timeout to finish before the listener closes,
// and in durable mode the queue is drained and a final snapshot written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cfsf"
	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/replication"
	"cfsf/internal/server"
	"cfsf/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfsf-server: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		data       = flag.String("data", "", "u.data path, or empty/synth for the built-in dataset")
		modelPath  = flag.String("model", "", "load a model saved with `cfsf save` instead of training")
		seed       = flag.Int64("seed", 1, "synthetic dataset seed")
		synthUsers = flag.Int("synth-users", 0, "synthetic dataset user count (0 = default 500; loadgen scenarios size this down for fast boots)")
		synthItems = flag.Int("synth-items", 0, "synthetic dataset item count (0 = default 1000)")
		shards     = flag.Int("shards", 0, "user-cluster count C = shard count for fresh training (0 = config default; ignored when loading a model or snapshot)")

		dataDir       = flag.String("data-dir", "", "durability root (WAL + snapshots); empty disables the lifecycle manager")
		fsync         = flag.String("fsync", "always", "WAL fsync policy: always, interval, or never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "flush cadence under -fsync interval")
		segmentBytes  = flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation size")
		batchMax      = flag.Int("batch-max", 256, "max ratings folded into one micro-batched model refresh")
		batchWait     = flag.Duration("batch-wait", 0, "extra coalescing delay before each micro-batch (0 = greedy)")
		queueCap      = flag.Int("queue-cap", 4096, "max journaled-but-unapplied ratings before /rate sheds load (503)")
		applyMode     = flag.String("apply-mode", "serial", "queue drain style: serial (one per-shard micro-batch at a time) or concurrent (grouped multi-shard prefix, one parallel apply)")
		snapshotEvery = flag.Duration("snapshot-every", 10*time.Minute, "background snapshot cadence (0 disables)")
		snapshotKeep  = flag.Int("snapshot-keep", 2, "how many snapshot files to retain")
		retrainAfter  = flag.Int("retrain-after", 0, "background retrain after this many applied ratings (0 disables)")
		retrainMode   = flag.String("retrain-mode", "shards", "background retrain style: shards (per-shard sweep) or full (stop-the-world KMeans)")
		snapVerify    = flag.Bool("snapshot-verify", true, "read each written snapshot blob back and compare it to the serving model before the manifest may prune the WAL")
		compact       = flag.Bool("compact", false, "fold checkpoint-covered WAL segments into a deduped compacted base after each snapshot instead of deleting them")
		compactMinSeg = flag.Int("compact-min-segments", 2, "skip the post-snapshot compaction pass below this many WAL segments")

		follow     = flag.String("follow", "", "run as a read replica of this leader URL (e.g. http://leader:8080); ignores -data/-model/-data-dir")
		adminToken = flag.String("admin-token", "", "shared secret gating /admin/* (Authorization: Bearer <token>); also sent to the leader under -follow")
		maxQPS     = flag.Int("max-qps", 0, "cap serving endpoints at this many requests/second per process (429 beyond it; 0 = unlimited)")

		debug           = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		growthMargin    = flag.Int("growth-margin", 1, "how far past current matrix bounds a /rate id may grow the model")
		maxBody         = flag.Int64("max-body", 1<<20, "request body size limit in bytes for /rate and /predict/batch")
		maxBatch        = flag.Int("max-batch", 1024, "maximum pairs per /predict/batch request")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout")
		writeTimeout    = flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout (raise when profiling via /debug/pprof/profile)")
		idleTimeout     = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		maxHeaderBytes  = flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
		shutdownTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	// bootstrap produces the base model when no snapshot exists yet (and
	// is the whole story when -data-dir is off). titles are only known
	// for the synthetic dataset and only when bootstrap actually ran.
	var titles []string
	bootstrap := func() (*core.Model, error) {
		if *modelPath != "" {
			t := time.Now()
			model, err := core.LoadFile(*modelPath)
			if err != nil {
				return nil, err
			}
			log.Printf("loaded model in %v (%d users × %d items)",
				time.Since(t).Round(time.Millisecond),
				model.Matrix().NumUsers(), model.Matrix().NumItems())
			return model, nil
		}
		var m *cfsf.Matrix
		if *data == "" || *data == "synth" {
			cfg := cfsf.DefaultSynthConfig()
			cfg.Seed = *seed
			if *synthUsers > 0 {
				cfg.Users = *synthUsers
			}
			if *synthItems > 0 {
				cfg.Items = *synthItems
				// Keep the per-user rating demands satisfiable (and the
				// density MovieLens-like) when the catalogue shrinks.
				if cfg.MinPerUser > cfg.Items/5 {
					cfg.MinPerUser = max(1, cfg.Items/5)
				}
				if cfg.MeanPerUser > float64(cfg.Items)/4 {
					cfg.MeanPerUser = float64(cfg.Items) / 4
				}
				if cfg.MeanPerUser < float64(cfg.MinPerUser) {
					cfg.MeanPerUser = float64(cfg.MinPerUser)
				}
			}
			d := cfsf.GenerateSynthetic(cfg)
			m, titles = d.Matrix, d.ItemTitles
		} else {
			var err error
			m, err = cfsf.ReadUDataFile(*data)
			if err != nil {
				return nil, err
			}
		}
		cfg := cfsf.DefaultConfig()
		if *shards > 0 {
			cfg.Clusters = *shards
		}
		t := time.Now()
		model, err := cfsf.Train(m, cfg)
		if err != nil {
			return nil, err
		}
		log.Printf("offline phase complete in %v (%d users × %d items)",
			time.Since(t).Round(time.Millisecond), m.NumUsers(), m.NumItems())
		return model, nil
	}

	// The listener opens before the model exists: the server starts in
	// "warming" state (alive, not ready) and Activate flips readiness
	// once the offline phase — or snapshot + WAL-tail recovery — is done.
	// Readiness probes (/healthz?ready=1) therefore measure true
	// recovery-to-servable time, which the loadgen kill-and-recover
	// scenario gates on.
	registry := obs.NewRegistry()
	srv := server.NewWarming(server.Options{
		GrowthMargin: *growthMargin,
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
		Debug:        *debug,
		Registry:     registry,
		AdminToken:   *adminToken,
		MaxQPS:       *maxQPS,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (debug=%v durable=%v, warming)", *addr, *debug, *dataDir != "")

	type bootResult struct {
		model    *core.Model
		mgr      *lifecycle.Manager
		follower *replication.Follower
		err      error
	}
	bootc := make(chan bootResult, 1)
	go func() {
		if *follow != "" {
			// Follower boot: no local training, no local WAL — bootstrap
			// from the leader's newest snapshot and stream its tail. Start
			// retries until the leader is reachable (or we get a signal).
			f, err := replication.Start(ctx, replication.Options{
				LeaderURL:  *follow,
				AdminToken: *adminToken,
				Registry:   registry,
				Logf:       log.Printf,
			})
			if err != nil {
				bootc <- bootResult{err: fmt.Errorf("follow %s: %w", *follow, err)}
				return
			}
			bootc <- bootResult{follower: f}
			return
		}
		if *dataDir == "" {
			model, err := bootstrap()
			bootc <- bootResult{model: model, err: err}
			return
		}
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			bootc <- bootResult{err: err}
			return
		}
		t := time.Now()
		mgr, err := lifecycle.Open(bootstrap, lifecycle.Config{
			DataDir:            *dataDir,
			Fsync:              policy,
			FsyncInterval:      *fsyncInterval,
			SegmentBytes:       *segmentBytes,
			BatchMaxSize:       *batchMax,
			BatchMaxWait:       *batchWait,
			QueueCapacity:      *queueCap,
			ApplyMode:          *applyMode,
			SnapshotEvery:      *snapshotEvery,
			SnapshotKeep:       *snapshotKeep,
			RetrainAfter:       *retrainAfter,
			RetrainMode:        *retrainMode,
			SkipSnapshotVerify: !*snapVerify,
			CompactEnabled:     *compact,
			CompactMinSegments: *compactMinSeg,
			Registry:           registry,
			Logf:               log.Printf,
		})
		if err != nil {
			bootc <- bootResult{err: fmt.Errorf("open data dir: %w", err)}
			return
		}
		bs := mgr.BootStats()
		log.Printf("durable boot in %v: snapshot=%q replayed=%d record(s) in %d batch(es) torn=%dB (fsync=%s)",
			time.Since(t).Round(time.Millisecond), bs.SnapshotLoaded, bs.ReplayedRecords,
			bs.ReplayedBatches, bs.TornBytes, policy)
		bootc <- bootResult{mgr: mgr}
	}()

	var mgr *lifecycle.Manager
	var fol *replication.Follower
	for {
		select {
		case err := <-errc:
			log.Fatalf("serve: %v", err)
		case b := <-bootc:
			if b.err != nil {
				log.Fatalf("build model: %v", b.err)
			}
			mgr, fol = b.mgr, b.follower
			if fol != nil {
				srv.ActivateFollower(fol, nil)
				log.Printf("ready (follower of %s, applied seq %d)", fol.LeaderURL(), fol.AppliedSeq())
			} else {
				srv.Activate(b.model, titles, b.mgr)
				log.Printf("ready (durable=%v)", mgr != nil)
			}
			bootc = nil // this arm fires once
		case <-ctx.Done():
			stop() // restore default signal handling: a second signal kills immediately
			log.Printf("signal received, draining for up to %v", *shutdownTimeout)
			if bootc != nil {
				// Boot is still running; let it finish so an opened
				// lifecycle manager (or follower stream) is closed cleanly
				// below.
				if b := <-bootc; b.err == nil {
					mgr, fol = b.mgr, b.follower
				}
			}
			srv.CloseReplication() // end follower WAL streams so Shutdown can drain
			sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
			defer cancel()
			if err := httpSrv.Shutdown(sctx); err != nil {
				log.Fatalf("shutdown: %v", err)
			}
			if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("serve: %v", err)
			}
			if fol != nil {
				fol.Close()
				log.Printf("replication stream closed")
			}
			if mgr != nil {
				if err := mgr.Close(); err != nil {
					log.Fatalf("close lifecycle manager: %v", err)
				}
				log.Printf("lifecycle manager closed (queue drained, final snapshot written)")
			}
			log.Printf("shutdown complete")
			return
		}
	}
}
