// Fleet mode: spawn a leader plus N-1 replication followers, drive the
// whole fleet round-robin, and measure what replication buys — aggregate
// read throughput versus a single node, catch-up time after a follower
// is SIGKILLed mid-stream, and bit-identical leader/follower parity via
// the model fingerprint.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"cfsf/internal/loadgen"
)

// fleetOpts carries the fleet-mode command-line surface.
type fleetOpts struct {
	serverBin      string
	dataDir        string
	fsync          string
	serverArgs     []string
	replicas       int
	killFollowerMS int
	compareSingle  bool
	adminToken     string
	maxQPS         int
	logf           func(format string, args ...any)
}

// fleetOutcome is everything fleet mode reports beyond the standard
// per-run reports: the scaling ratio, catch-up measurement, and parity.
type fleetOutcome struct {
	reports []*loadgen.Report
	bench   []string
	pass    bool
}

func (o *fleetOpts) log(format string, args ...any) {
	if o.logf != nil {
		o.logf(format, args...)
	}
}

// runFleet executes one scenario in fleet mode. With compareSingle it
// first replays the identical stream against a single node (same
// -max-qps capacity), so "fleet ok/s ÷ single ok/s" is a controlled
// scaling measurement rather than two unrelated runs.
func runFleet(ctx context.Context, runner *loadgen.Runner, sc *loadgen.Scenario, o fleetOpts) (*fleetOutcome, error) {
	if o.replicas < 2 {
		return nil, fmt.Errorf("fleet mode needs -replicas >= 2, got %d", o.replicas)
	}
	out := &fleetOutcome{pass: true}
	var logSink io.Writer
	if o.logf != nil {
		logSink = os.Stderr
	}

	baseDir := o.dataDir
	if baseDir == "" {
		tmp, err := os.MkdirTemp("", "cfsf-fleet-"+sc.Name+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		baseDir = tmp
	}

	leaderOpts := loadgen.ProcOptions{
		ServerBin:    o.serverBin,
		DataDir:      filepath.Join(baseDir, "leader"),
		Dataset:      sc.Dataset,
		GrowthMargin: sc.GrowthMargin(),
		Fsync:        o.fsync,
		Stderr:       logSink,
		ExtraArgs:    o.serverArgs,
		AdminToken:   o.adminToken,
		MaxQPS:       o.maxQPS,
	}
	if err := os.MkdirAll(leaderOpts.DataDir, 0o755); err != nil {
		return nil, err
	}

	// Baseline: the same stream against one node with the same per-node
	// capacity. Its SLO verdict is informational — a capped single node
	// is expected to shed load — so it never fails the run.
	var singleOKPS float64
	if o.compareSingle {
		o.log("fleet: baseline run against a single node (max-qps=%d)", o.maxQPS)
		st, err := loadgen.BuildStream(sc)
		if err != nil {
			return nil, err
		}
		single, err := loadgen.SpawnServer(leaderOpts)
		if err != nil {
			return nil, err
		}
		rep, err := runner.Run(ctx, st, single)
		cerr := single.Close()
		if err != nil {
			return nil, fmt.Errorf("baseline run: %w", err)
		}
		if cerr != nil {
			return nil, fmt.Errorf("close baseline server: %w", cerr)
		}
		rep.Scenario = sc.Name + "_single"
		out.reports = append(out.reports, rep)
		singleOKPS = totalOKPS(rep)
		// A fresh data dir for the real leader: the baseline already
		// trained and snapshotted into leader/, which is exactly what we
		// want — the leader boots from that snapshot, fast.
	}

	o.log("fleet: spawning leader + %d follower(s)", o.replicas-1)
	leader, err := loadgen.SpawnServer(leaderOpts)
	if err != nil {
		return nil, err
	}
	members := []loadgen.Target{leader}
	closeAll := func() {
		for _, t := range members {
			_ = t.Close()
		}
	}
	if err := runner.AwaitReady(ctx, leader); err != nil {
		closeAll()
		return nil, fmt.Errorf("leader not ready: %w", err)
	}
	var followers []*loadgen.ProcTarget
	for i := 1; i < o.replicas; i++ {
		f, err := loadgen.SpawnServer(loadgen.ProcOptions{
			ServerBin:  o.serverBin,
			FollowURL:  leader.URL(),
			AdminToken: o.adminToken,
			MaxQPS:     o.maxQPS,
			Stderr:     logSink,
		})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("spawn follower %d: %w", i, err)
		}
		members = append(members, f)
		followers = append(followers, f)
	}
	for i, f := range followers {
		if err := runner.AwaitReady(ctx, f); err != nil {
			closeAll()
			return nil, fmt.Errorf("follower %d never bootstrapped: %w", i+1, err)
		}
	}

	mt, err := loadgen.NewMultiTarget(members...)
	if err != nil {
		closeAll()
		return nil, err
	}
	defer func() {
		if err := mt.Close(); err != nil {
			o.log("fleet: close: %v", err)
		}
	}()
	runner.ControlTarget = loadgen.StaticTarget(leader.URL())
	defer func() { runner.ControlTarget = nil }()

	// The kill drill runs beside the traffic: SIGKILL one follower
	// mid-stream, restart it (fresh bootstrap + tail catch-up), measure
	// kill-to-ready-and-caught-up, put it back in rotation.
	var catchupMS float64
	killErr := make(chan error, 1)
	if o.killFollowerMS > 0 {
		go func() {
			select {
			case <-time.After(time.Duration(o.killFollowerMS) * time.Millisecond):
			case <-ctx.Done():
				killErr <- nil
				return
			}
			victimIdx := len(members) - 1 // rotation slot of the last follower
			victim := followers[len(followers)-1]
			o.log("fleet: killing follower %s mid-stream", victim.URL())
			mt.Suspend(victimIdx)
			// Connection drain, as a real balancer would: requests already
			// dispatched to the victim get a moment to complete before the
			// SIGKILL, so the drill measures replication catch-up, not the
			// truism that killing a socket kills its in-flight reads.
			select {
			case <-time.After(300 * time.Millisecond):
			case <-ctx.Done():
				killErr <- nil
				return
			}
			t0 := time.Now()
			if err := victim.Kill(); err != nil {
				killErr <- err
				return
			}
			if err := victim.Restart(); err != nil {
				killErr <- err
				return
			}
			if err := runner.AwaitReady(ctx, victim); err != nil {
				killErr <- fmt.Errorf("killed follower never recovered: %w", err)
				return
			}
			if err := awaitCaughtUp(ctx, leader.URL(), victim.URL(), o.adminToken, 30*time.Second); err != nil {
				killErr <- err
				return
			}
			catchupMS = float64(time.Since(t0)) / float64(time.Millisecond)
			mt.Resume(victimIdx)
			o.log("fleet: follower back in rotation after %.0fms", catchupMS)
			killErr <- nil
		}()
	} else {
		killErr <- nil
	}

	st, err := loadgen.BuildStream(sc)
	if err != nil {
		return nil, err
	}
	rep, err := runner.Run(ctx, st, mt)
	if err != nil {
		return nil, err
	}
	if err := <-killErr; err != nil {
		return nil, fmt.Errorf("kill drill: %w", err)
	}
	out.reports = append(out.reports, rep)
	if !rep.Pass {
		out.pass = false
	}

	// Parity: every member must converge to the same applied seq and the
	// same model fingerprint — the bit-identical replication guarantee.
	parity := 1.0
	if err := awaitParity(ctx, members, o.adminToken, 30*time.Second); err != nil {
		o.log("fleet: parity check failed: %v", err)
		parity = 0
		out.pass = false
	}

	fleetOKPS := totalOKPS(rep)
	out.bench = append(out.bench,
		fmt.Sprintf("BenchmarkReplication/%s/fleet-%d 1 %.2f ok-per-sec", sc.Name, o.replicas, fleetOKPS),
		fmt.Sprintf("BenchmarkReplication/%s/parity 1 %.0f ok", sc.Name, parity),
	)
	if o.compareSingle && singleOKPS > 0 {
		ratio := fleetOKPS / singleOKPS
		out.bench = append(out.bench,
			fmt.Sprintf("BenchmarkReplication/%s/single 1 %.2f ok-per-sec", sc.Name, singleOKPS),
			fmt.Sprintf("BenchmarkReplication/%s/scaling 1 %.3f x", sc.Name, ratio),
		)
		o.log("fleet: scaling %.2fx (%.1f ok/s over %d nodes vs %.1f single)", ratio, fleetOKPS, o.replicas, singleOKPS)
	}
	if o.killFollowerMS > 0 {
		out.bench = append(out.bench,
			fmt.Sprintf("BenchmarkReplication/%s/catchup 1 %.0f catchup-ms", sc.Name, catchupMS))
	}
	return out, nil
}

// totalOKPS sums successful responses per second across operations.
func totalOKPS(rep *loadgen.Report) float64 {
	var total float64
	for _, o := range rep.Ops {
		total += o.OKPerSec
	}
	return total
}

// fingerprintOf fetches /admin/fingerprint from one node.
func fingerprintOf(ctx context.Context, base, token string) (fp string, seq uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/admin/fingerprint", nil)
	if err != nil {
		return "", 0, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return "", 0, fmt.Errorf("%s: status %d: %s", base, resp.StatusCode, body)
	}
	var doc struct {
		Fingerprint string `json:"fingerprint"`
		Seq         uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", 0, err
	}
	return doc.Fingerprint, doc.Seq, nil
}

// awaitCaughtUp polls until the follower's applied seq reaches the
// leader's — the restarted replica is streaming again and has folded
// everything the leader has.
func awaitCaughtUp(ctx context.Context, leaderURL, followerURL, token string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, lseq, lerr := fingerprintOf(ctx, leaderURL, token)
		_, fseq, ferr := fingerprintOf(ctx, followerURL, token)
		if lerr == nil && ferr == nil && fseq >= lseq {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("follower %s did not catch up to leader within %v", followerURL, timeout)
}

// awaitParity polls until every member reports the same (seq,
// fingerprint) pair. Seqs converge once the leader's queue has drained
// and followers have applied the tail; fingerprints must then be
// byte-identical or replication broke its bit-for-bit contract.
func awaitParity(ctx context.Context, members []loadgen.Target, token string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		type state struct {
			fp  string
			seq uint64
		}
		states := make([]state, len(members))
		ok := true
		for i, m := range members {
			fp, seq, err := fingerprintOf(ctx, m.URL(), token)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			states[i] = state{fp, seq}
		}
		if ok {
			same := true
			for i := 1; i < len(states); i++ {
				if states[i] != states[0] {
					same = false
					lastErr = fmt.Errorf("member %d at seq %d fp %.16s…, member 0 at seq %d fp %.16s…",
						i, states[i].seq, states[i].fp, states[0].seq, states[0].fp)
					break
				}
			}
			if same {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("fleet did not reach parity within %v: %v", timeout, lastErr)
}
