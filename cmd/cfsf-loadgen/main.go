// cfsf-loadgen replays committed load scenarios against a cfsf-server
// and gates the run on the scenario's SLOs.
//
// Usage:
//
//	cfsf-loadgen -list                                # committed scenarios
//	cfsf-loadgen -server-bin ./cfsf-server steady     # spawn a server, run one scenario
//	cfsf-loadgen -target http://host:8080 steady      # drive an already-running server
//	cfsf-loadgen -server-bin ./cfsf-server -bench steady killrecover | benchjson -max ...
//
// Each run is reproducible: the report prints the resolved config hash,
// the seed, and the request-stream fingerprint; re-running the same
// scenario version with the same seed (and overrides) replays the
// byte-identical request sequence.
//
// Exit status: 0 all scenarios passed their SLOs, 1 at least one SLO
// breached, 2 usage or configuration error (reported before any request
// is sent).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"cfsf/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("cfsf-loadgen: ")

	var (
		list      = flag.Bool("list", false, "list committed scenarios and exit")
		target    = flag.String("target", "", "base URL(s) of running cfsf-server(s), comma-separated for round-robin over a replica fleet; empty spawns one with -server-bin")
		serverBin = flag.String("server-bin", "", "path to a prebuilt cfsf-server binary (required without -target)")
		dataDir   = flag.String("data-dir", "", "durability root for the spawned server (default: per-run temp dir)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy for the spawned server")
		serverArg = flag.String("server-arg", "", "extra flags appended verbatim to the spawned server's argument vector, space-separated (e.g. '-compact=true -compact-min-segments 4')")
		duration  = flag.Int("duration-ms", 0, "override scenario duration_ms (0 = scenario value)")
		qps       = flag.Float64("qps", 0, "override scenario qps (0 = scenario value)")
		seed      = flag.Int64("seed", 0, "override scenario seed (0 = scenario value)")
		jsonOut   = flag.Bool("json", false, "emit the JSON report(s) to stdout instead of text")
		bench     = flag.Bool("bench", false, "emit go-bench-format result lines (for cmd/benchjson)")
		outPath   = flag.String("o", "", "also write the JSON report array to this file")
		verbose   = flag.Bool("v", false, "log runner progress to stderr")

		replicas   = flag.Int("replicas", 0, "fleet mode: spawn a leader plus replicas-1 followers and drive them round-robin (needs -server-bin)")
		killMS     = flag.Int("kill-follower-ms", 0, "fleet mode: SIGKILL one follower this many ms into the run, restart it, and report catch-up time")
		cmpSingle  = flag.Bool("compare-single", false, "fleet mode: first run the same stream against one node and report the fleet/single scaling ratio")
		adminToken = flag.String("admin-token", "", "shared admin bearer token forwarded to spawned servers (and used for parity probes)")
		maxQPS     = flag.Int("max-qps", 0, "per-node -max-qps admission cap forwarded to spawned servers (fleet scaling runs)")
	)
	flag.Parse()

	if *list {
		for _, name := range loadgen.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if flag.NArg() == 0 {
		log.Printf("no scenarios named; try -list or pass a scenario name/path")
		return 2
	}
	if *target == "" && *serverBin == "" {
		log.Printf("need either -target URL or -server-bin path")
		return 2
	}
	if *replicas > 0 {
		if *serverBin == "" || *target != "" {
			log.Printf("fleet mode (-replicas) spawns its own processes: needs -server-bin, not -target")
			return 2
		}
		if *replicas < 2 {
			log.Printf("fleet mode needs -replicas >= 2")
			return 2
		}
	}

	// Resolve and validate every scenario up front: a bad config in the
	// third argument must fail before the first sends a single request.
	var scenarios []*loadgen.Scenario
	for _, arg := range flag.Args() {
		sc, err := loadgen.Load(arg)
		if err != nil {
			log.Printf("%v", err)
			return 2
		}
		if *duration > 0 {
			sc.DurationMS = *duration
			if sc.Kind == loadgen.KindKillRecover && sc.KillAfterMS >= sc.DurationMS {
				sc.KillAfterMS = sc.DurationMS / 2
			}
		}
		if *qps > 0 {
			sc.QPS = *qps
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		if err := sc.Validate(); err != nil {
			log.Printf("after overrides: %v", err)
			return 2
		}
		if sc.Kind == loadgen.KindKillRecover && (*target != "" || *replicas > 0) {
			log.Printf("scenario %q: killrecover needs a single self-spawned server (no -target, no -replicas; fleet mode has -kill-follower-ms instead)", sc.Name)
			return 2
		}
		scenarios = append(scenarios, sc)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &loadgen.Runner{}
	if *verbose {
		runner.Logf = log.Printf
	}

	var reports []*loadgen.Report
	allPass := true
	emit := func(rep *loadgen.Report) error {
		reports = append(reports, rep)
		switch {
		case *bench:
			for _, line := range rep.BenchLines() {
				fmt.Println(line)
			}
		case *jsonOut:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return fmt.Errorf("encode report: %w", err)
			}
		default:
			fmt.Print(rep.Text())
		}
		return nil
	}
	for _, sc := range scenarios {
		if *replicas > 0 {
			out, err := runFleet(ctx, runner, sc, fleetOpts{
				serverBin:      *serverBin,
				dataDir:        *dataDir,
				fsync:          *fsync,
				serverArgs:     strings.Fields(*serverArg),
				replicas:       *replicas,
				killFollowerMS: *killMS,
				compareSingle:  *cmpSingle,
				adminToken:     *adminToken,
				maxQPS:         *maxQPS,
				logf:           runner.Logf,
			})
			if err != nil {
				log.Printf("scenario %q: %v", sc.Name, err)
				return 2
			}
			// The single-node baseline's SLO verdict is informational
			// (out.pass already excludes it): a capacity-capped node
			// shedding load is the expected contrast, not a failure.
			for _, rep := range out.reports {
				if err := emit(rep); err != nil {
					log.Printf("%v", err)
					return 2
				}
			}
			for _, line := range out.bench {
				if *bench {
					fmt.Println(line)
				} else {
					log.Printf("fleet: %s", line)
				}
			}
			if !out.pass {
				allPass = false
			}
			continue
		}
		rep, err := runScenario(ctx, runner, sc, *target, *serverBin, *dataDir, *fsync, strings.Fields(*serverArg))
		if err != nil {
			log.Printf("scenario %q: %v", sc.Name, err)
			return 2
		}
		if !rep.Pass {
			allPass = false
		}
		if err := emit(rep); err != nil {
			log.Printf("%v", err)
			return 2
		}
	}

	if *outPath != "" {
		raw, err := json.MarshalIndent(reports, "", "  ")
		if err == nil {
			err = os.WriteFile(*outPath, append(raw, '\n'), 0o644)
		}
		if err != nil {
			log.Printf("write %s: %v", *outPath, err)
			return 2
		}
	}

	if !allPass {
		log.Printf("SLO breach: at least one scenario failed its gates")
		return 1
	}
	return 0
}

// runScenario builds the request stream, resolves the target (external
// URL or a freshly spawned server on a private data dir), runs, and
// tears the target down.
func runScenario(ctx context.Context, runner *loadgen.Runner, sc *loadgen.Scenario, targetURL, serverBin, dataDir, fsync string, serverArgs []string) (*loadgen.Report, error) {
	st, err := loadgen.BuildStream(sc)
	if err != nil {
		return nil, err
	}

	var tgt loadgen.Target
	if targetURL != "" {
		// Comma-separated URLs form a round-robin fleet target; control
		// probes (readiness, drain) go to the first member, by convention
		// the leader.
		var members []loadgen.Target
		for _, u := range strings.Split(targetURL, ",") {
			if u = strings.TrimSpace(u); u != "" {
				members = append(members, loadgen.StaticTarget(strings.TrimSuffix(u, "/")))
			}
		}
		if len(members) > 1 {
			mt, err := loadgen.NewMultiTarget(members...)
			if err != nil {
				return nil, err
			}
			tgt = mt
			runner.ControlTarget = members[0]
			defer func() { runner.ControlTarget = nil }()
		} else if len(members) == 1 {
			tgt = members[0]
		} else {
			return nil, fmt.Errorf("-target %q resolves to no URLs", targetURL)
		}
	} else {
		dir := dataDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "cfsf-loadgen-"+sc.Name+"-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else {
			dir = filepath.Join(dir, sc.Name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		var logSink io.Writer
		if runner.Logf != nil {
			logSink = os.Stderr
		}
		proc, err := loadgen.SpawnServer(loadgen.ProcOptions{
			ServerBin:    serverBin,
			DataDir:      dir,
			Dataset:      sc.Dataset,
			GrowthMargin: sc.GrowthMargin(),
			Fsync:        fsync,
			Stderr:       logSink,
			ExtraArgs:    serverArgs,
		})
		if err != nil {
			return nil, err
		}
		tgt = proc
	}
	defer func() {
		if err := tgt.Close(); err != nil {
			log.Printf("close target: %v", err)
		}
	}()

	return runner.Run(ctx, st, tgt)
}
