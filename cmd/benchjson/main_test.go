package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: cfsf/internal/core
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkShardedApplySingleShardBatch-1         100     123456 ns/op     7715.5 ns/update
BenchmarkMonolithicFullRetrain-1                  2  987654321 ns/op
BenchmarkBroken-1   notanumber   1 ns/op
PASS
ok      cfsf/internal/core      12.3s
`
	doc, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "cfsf/internal/core" {
		t.Errorf("metadata = %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("parsed %d results, want 2 (broken line must be skipped): %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkShardedApplySingleShardBatch-1" || r.Iterations != 100 {
		t.Errorf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 123456 || r.Metrics["ns/update"] != 7715.5 {
		t.Errorf("first result metrics = %v", r.Metrics)
	}
	if doc.Results[1].Metrics["ns/op"] != 987654321 {
		t.Errorf("second result metrics = %v", doc.Results[1].Metrics)
	}
}

func TestRequireZeroAllocs(t *testing.T) {
	results := []result{
		{Name: "BenchmarkPredict-8", Metrics: map[string]float64{"ns/op": 100, "B/op": 0, "allocs/op": 0}},
		{Name: "BenchmarkRecommend-8", Metrics: map[string]float64{"ns/op": 200, "B/op": 512, "allocs/op": 3}},
		{Name: "BenchmarkNoMem-8", Metrics: map[string]float64{"ns/op": 50}},
	}
	if err := requireZeroAllocs(results, `^BenchmarkPredict`); err != nil {
		t.Errorf("zero-alloc benchmark rejected: %v", err)
	}
	if err := requireZeroAllocs(results, `^BenchmarkRecommend`); err == nil {
		t.Error("3 allocs/op passed the zero-alloc gate")
	}
	if err := requireZeroAllocs(results, `^BenchmarkNoMem`); err == nil {
		t.Error("missing allocs/op metric passed the gate (bench ran without -benchmem)")
	}
	if err := requireZeroAllocs(results, `^BenchmarkRenamedAway`); err == nil {
		t.Error("pattern matching nothing passed the gate")
	}
	if err := requireZeroAllocs(results, `(`); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestParseRejectsEmptyAndOddLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-1",
		"BenchmarkX-1 10 5",          // dangling value without unit
		"BenchmarkX-1 ten 5 ns/op",   // bad iteration count
		"BenchmarkX-1 10 five ns/op", // bad value
	} {
		if res, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as %+v, want rejection", line, res)
		}
	}
}

func TestGateFlagsAndRequireGate(t *testing.T) {
	var gates gateFlags
	if err := gates.Set("^BenchmarkScaling:x=2.5"); err != nil {
		t.Fatal(err)
	}
	if err := gates.Set("nonsense"); err == nil {
		t.Error("spec without metric accepted")
	}
	if err := gates.Set("^B:metric=notanumber"); err == nil {
		t.Error("non-numeric gate value accepted")
	}
	if err := gates.Set("(:x=1"); err == nil {
		t.Error("invalid pattern accepted")
	}

	results := []result{
		{Name: "BenchmarkScaling", Metrics: map[string]float64{"x": 2.9}},
		{Name: "BenchmarkParity", Metrics: map[string]float64{"ok": 0}},
	}
	spec := gates[0]
	// Floor gate (-min): 2.9 >= 2.5 passes, a 3.0 floor fails.
	if err := requireGate(results, spec, "min", func(v float64) bool { return v >= spec.Value }); err != nil {
		t.Errorf("scaling 2.9 failed a 2.5 floor: %v", err)
	}
	if err := requireGate(results, spec, "min", func(v float64) bool { return v >= 3.0 }); err == nil {
		t.Error("scaling 2.9 passed a 3.0 floor")
	}
	// Ceiling gate (-max) over the same machinery.
	if err := requireGate(results, spec, "max", func(v float64) bool { return v <= spec.Value }); err == nil {
		t.Error("scaling 2.9 passed a 2.5 ceiling")
	}
	// A spec matching nothing must fail rather than silently disarm.
	var renamed gateFlags
	if err := renamed.Set("^BenchmarkRenamedAway:x=1"); err != nil {
		t.Fatal(err)
	}
	r := renamed[0]
	if err := requireGate(results, r, "min", func(v float64) bool { return v >= r.Value }); err == nil {
		t.Error("pattern matching nothing passed the gate")
	}
	// Missing metric on a matched benchmark fails.
	var pg gateFlags
	if err := pg.Set("^BenchmarkParity:missing=1"); err != nil {
		t.Fatal(err)
	}
	p := pg[0]
	if err := requireGate(results, p, "min", func(v float64) bool { return v >= p.Value }); err == nil {
		t.Error("matched benchmark without the metric passed the gate")
	}
}
