// benchjson converts `go test -bench` text output into JSON so CI can
// archive benchmark runs as machine-readable artifacts (BENCH_shard.json)
// and later tooling can diff them across commits.
//
// Usage:
//
//	go test -bench 'Sharded|Monolithic' -run '^$' ./internal/core | benchjson -o BENCH_shard.json
//
// Every "BenchmarkName iterations value unit [value unit ...]" line
// becomes one result object; goos/goarch/pkg/cpu header lines are
// captured as metadata. Unparseable lines are ignored, so the tool can
// consume raw `go test` output including PASS/ok trailers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	zeroAllocs := flag.String("require-zero-allocs", "", "regexp of benchmark names that must report allocs/op == 0 (run with -benchmem); nonzero or missing allocs fail the run")
	var maxes, mins gateFlags
	flag.Var(&maxes, "max", "threshold gate 'NameRegexp:metric=value' (repeatable): every matching benchmark's metric must be <= value; a pattern matching nothing fails too")
	flag.Var(&mins, "min", "floor gate 'NameRegexp:metric=value' (repeatable): every matching benchmark's metric must be >= value; a pattern matching nothing fails too")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	if *zeroAllocs != "" {
		if err := requireZeroAllocs(doc.Results, *zeroAllocs); err != nil {
			log.Fatal(err)
		}
	}
	for _, m := range maxes {
		if err := requireGate(doc.Results, m, "max", func(v float64) bool { return v <= m.Value }); err != nil {
			log.Fatal(err)
		}
	}
	for _, m := range mins {
		if err := requireGate(doc.Results, m, "min", func(v float64) bool { return v >= m.Value }); err != nil {
			log.Fatal(err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// requireZeroAllocs enforces the steady-state allocation gate: every
// result whose name matches pattern must carry an allocs/op metric
// (i.e. the bench ran with -benchmem) and it must be exactly 0. A
// pattern that matches nothing is an error too — a renamed benchmark
// must not silently disarm the gate.
func requireZeroAllocs(results []result, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -require-zero-allocs pattern: %w", err)
	}
	matched := 0
	for _, r := range results {
		if !re.MatchString(r.Name) {
			continue
		}
		matched++
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			return fmt.Errorf("%s: no allocs/op metric (run the benchmark with -benchmem)", r.Name)
		}
		if allocs != 0 {
			return fmt.Errorf("%s: %v allocs/op, want 0", r.Name, allocs)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark matched -require-zero-allocs %q", pattern)
	}
	return nil
}

// gateSpec is one parsed -max or -min gate: benchmarks whose name
// matches Name must report Metric on the right side of Value.
type gateSpec struct {
	Name   *regexp.Regexp
	Metric string
	Value  float64
}

// gateFlags accumulates repeated -max/-min flags, parsing each at set
// time so a malformed spec fails before any benchmark output is
// consumed.
type gateFlags []gateSpec

func (m *gateFlags) String() string {
	parts := make([]string, len(*m))
	for i, s := range *m {
		parts[i] = fmt.Sprintf("%s:%s=%g", s.Name, s.Metric, s.Value)
	}
	return strings.Join(parts, ",")
}

func (m *gateFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("bad gate %q: want 'NameRegexp:metric=value'", v)
	}
	metric, valStr, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("bad gate %q: want 'NameRegexp:metric=value'", v)
	}
	re, err := regexp.Compile(name)
	if err != nil {
		return fmt.Errorf("bad gate pattern %q: %w", name, err)
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("bad gate value %q: %w", valStr, err)
	}
	*m = append(*m, gateSpec{Name: re, Metric: metric, Value: val})
	return nil
}

// requireGate enforces one threshold gate: every matching result must
// carry the metric and satisfy ok (<= ceiling for -max, >= floor for
// -min). Like the zero-allocs gate, a spec matching no benchmark is
// itself an error so a renamed benchmark cannot silently disarm the
// gate.
func requireGate(results []result, spec gateSpec, kind string, ok func(float64) bool) error {
	matched := 0
	for _, r := range results {
		if !spec.Name.MatchString(r.Name) {
			continue
		}
		matched++
		v, present := r.Metrics[spec.Metric]
		if !present {
			return fmt.Errorf("%s: no %s metric", r.Name, spec.Metric)
		}
		if !ok(v) {
			return fmt.Errorf("%s: %v %s violates -%s %v", r.Name, v, spec.Metric, kind, spec.Value)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark matched -%s %q", kind, spec.Name)
	}
	return nil
}

func parse(r io.Reader) (*document, error) {
	doc := &document{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBenchLine(line); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read input: %w", err)
	}
	return doc, nil
}

// parseBenchLine decodes one benchmark result line: the name, the
// iteration count, then (value, unit) pairs such as "1234 ns/op" or
// "56.7 ns/update".
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
