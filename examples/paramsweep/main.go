// paramsweep reproduces the paper's sensitivity analysis (§V-E) in
// miniature: it sweeps λ, δ, the smoothed-rating weight w, and the local
// matrix dimensions M and K on one Given-10 split, printing each curve
// with the best setting marked. Use it to re-tune CFSF for a new dataset.
package main

import (
	"fmt"
	"log"

	"cfsf"
)

func main() {
	cfg := cfsf.DefaultSynthConfig()
	cfg.Users = 300
	cfg.Items = 500
	cfg.MeanPerUser = 60
	data := cfsf.GenerateSynthetic(cfg)

	split, err := cfsf.MLSplit(data.Matrix, 180, 120, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping on %d users × %d items, %d held-out targets\n\n",
		data.Matrix.NumUsers(), data.Matrix.NumItems(), len(split.Targets))

	sweep(split, "lambda (SUR' share)", []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		func(c *cfsf.Config, v float64) { c.Lambda = v })
	sweep(split, "delta (SUIR' share)", []float64{0, 0.1, 0.2, 0.4, 0.7, 1.0},
		func(c *cfsf.Config, v float64) { c.Delta = v })
	sweep(split, "w (smoothed-rating weight, 1-epsilon)", []float64{0.05, 0.15, 0.25, 0.4, 0.6, 0.8},
		func(c *cfsf.Config, v float64) { c.OriginalWeight = 1 - v })
	sweep(split, "M (similar items)", []float64{5, 20, 50, 95, 140},
		func(c *cfsf.Config, v float64) { c.M = int(v) })
	sweep(split, "K (like-minded users)", []float64{5, 15, 25, 40, 70, 100},
		func(c *cfsf.Config, v float64) { c.K = int(v) })
	sweep(split, "C (user clusters)", []float64{5, 15, 30, 50, 80},
		func(c *cfsf.Config, v float64) { c.Clusters = int(v) })
}

func sweep(split *cfsf.GivenNSplit, name string, values []float64, set func(*cfsf.Config, float64)) {
	fmt.Printf("%s:\n", name)
	bestV, bestMAE := 0.0, 99.0
	type point struct {
		v, mae float64
	}
	var pts []point
	for _, v := range values {
		cfg := cfsf.DefaultConfig()
		set(&cfg, v)
		res, err := cfsf.Evaluate(cfsf.NewPredictor(cfg), split, cfsf.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{v, res.MAE})
		if res.MAE < bestMAE {
			bestV, bestMAE = v, res.MAE
		}
	}
	for _, p := range pts {
		marker := ""
		if p.v == bestV {
			marker = "  <- best"
		}
		fmt.Printf("  %6g  MAE %.4f%s\n", p.v, p.mae, marker)
	}
	fmt.Println()
}
