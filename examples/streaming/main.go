// streaming demonstrates the paper's §VI future-work extension: keeping
// the model (and its GIS) up-to-date as ratings stream in, without
// rerunning the whole offline phase. A new user arrives, rates a few
// movies one by one, and the model's recommendations for them sharpen
// after every incremental refresh — at a fraction of full retraining
// cost.
package main

import (
	"fmt"
	"log"
	"time"

	"cfsf"
)

func main() {
	data := cfsf.GenerateSynthetic(cfsf.DefaultSynthConfig())
	model, err := cfsf.Train(data.Matrix, cfsf.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fullTrain := model.Stats().TotalDuration
	fmt.Printf("initial offline phase: %v\n\n", fullTrain.Round(time.Millisecond))

	// A brand-new user who loves Musicals arrives and rates five musical
	// movies 5 stars, one session at a time.
	newUser := data.Matrix.NumUsers()
	var musicals []int
	for i, genres := range data.ItemGenres {
		if data.GenreNames[genres[0]] == "Musical" {
			musicals = append(musicals, i)
		}
		if len(musicals) == 8 {
			_ = i
			break
		}
	}
	if len(musicals) < 6 {
		log.Fatal("not enough musicals in the catalogue")
	}

	probe := musicals[5] // held-out musical: does its prediction rise?
	fmt.Printf("probe movie: %q\n", data.ItemTitles[probe])
	fmt.Printf("%-28s %-10s %-12s %s\n", "event", "refresh", "pred(probe)", "top recommendation")

	cur := model
	for step, item := range musicals[:5] {
		t := time.Now()
		cur, err = cur.WithUpdates([]cfsf.RatingUpdate{{User: newUser, Item: item, Value: 5}})
		if err != nil {
			log.Fatal(err)
		}
		refresh := time.Since(t)

		pred := cur.Predict(newUser, probe)
		top := "-"
		if recs := cur.Recommend(newUser, 1); len(recs) > 0 {
			top = data.ItemTitles[recs[0].Item]
		}
		fmt.Printf("rated %-22q %-10v %-12.3f %s\n",
			shorten(data.ItemTitles[item]), refresh.Round(time.Millisecond), pred, top)
		_ = step
	}

	fmt.Printf("\nincremental refresh vs full retrain: the offline phase took %v;\n", fullTrain.Round(time.Millisecond))
	fmt.Println("each streamed rating was folded in with GIS.Refresh + centroid")
	fmt.Println("reassignment instead (see Model.WithUpdates).")
}

func shorten(s string) string {
	if len(s) > 20 {
		return s[:20]
	}
	return s
}
