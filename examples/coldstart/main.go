// coldstart examines the data-sparsity story of the paper (§V, Given-N):
// how prediction quality degrades as new users reveal fewer ratings, and
// how CFSF's smoothing keeps it ahead of the traditional item-based (SIR)
// and user-based (SUR) baselines precisely where data is scarcest.
package main

import (
	"fmt"
	"log"

	"cfsf"
)

func main() {
	data := cfsf.GenerateSynthetic(cfsf.DefaultSynthConfig())

	fmt.Println("MAE as new users reveal more ratings (ML_300 protocol):")
	fmt.Printf("%8s  %8s  %8s  %8s  %s\n", "Given", "CFSF", "SUR", "SIR", "CFSF advantage over best baseline")

	for _, given := range []int{2, 5, 10, 20, 40} {
		split, err := cfsf.MLSplit(data.Matrix, 300, 200, given)
		if err != nil {
			log.Fatal(err)
		}
		mae := func(p cfsf.Predictor) float64 {
			res, err := cfsf.Evaluate(p, split, cfsf.EvalOptions{})
			if err != nil {
				log.Fatal(err)
			}
			return res.MAE
		}
		c := mae(cfsf.NewPredictor(cfsf.DefaultConfig()))
		sur, _ := cfsf.NewBaseline("sur")
		sir, _ := cfsf.NewBaseline("sir")
		s := mae(sur)
		i := mae(sir)
		best := s
		if i < best {
			best = i
		}
		fmt.Printf("%8d  %8.4f  %8.4f  %8.4f  %+.4f\n", given, c, s, i, best-c)
	}

	// The zero-ratings corner: a brand-new user must still get sane
	// predictions through the fallback chain.
	fmt.Println("\nbrand-new user (no ratings at all):")
	b := cfsf.NewMatrixBuilder(data.Matrix.NumUsers()+1, data.Matrix.NumItems())
	for u := 0; u < data.Matrix.NumUsers(); u++ {
		for _, e := range data.Matrix.UserRatings(u) {
			if err := b.Add(u, int(e.Index), e.Value); err != nil {
				log.Fatal(err)
			}
		}
	}
	m := b.Build()
	model, err := cfsf.Train(m, cfsf.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	newUser := m.NumUsers() - 1
	for _, item := range []int{0, 100, 500} {
		fmt.Printf("  predict(new user, item %3d) = %.3f (falls back toward the item/global mean %.3f)\n",
			item, model.Predict(newUser, item), m.ItemMean(item))
	}
}
