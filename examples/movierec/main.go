// movierec is the domain example the paper's introduction motivates: a
// movie recommender. It builds a genre-labelled catalogue, trains CFSF,
// and then profiles three users — showing what they rated highly, what
// CFSF recommends, and how the recommendations track each user's taste
// (genre overlap between their top-rated and recommended movies).
package main

import (
	"fmt"
	"log"
	"sort"

	"cfsf"
)

func main() {
	data := cfsf.GenerateSynthetic(cfsf.DefaultSynthConfig())
	m := data.Matrix

	model, err := cfsf.Train(m, cfsf.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d movies, %d genres; %d users; trained in %v\n\n",
		m.NumItems(), len(data.GenreNames), m.NumUsers(),
		model.Stats().TotalDuration.Round(1e6))

	for _, user := range []int{11, 42, 137} {
		profileUser(model, data, user)
	}
}

func profileUser(model *cfsf.Model, data *cfsf.SynthDataset, user int) {
	m := data.Matrix
	fmt.Printf("=== user %d (%d ratings, mean %.2f) ===\n",
		user, len(m.UserRatings(user)), m.UserMean(user))

	// The user's own favourites.
	type rated struct {
		item int
		r    float64
	}
	var favs []rated
	for _, e := range m.UserRatings(user) {
		favs = append(favs, rated{int(e.Index), e.Value})
	}
	sort.Slice(favs, func(i, j int) bool {
		if favs[i].r != favs[j].r {
			return favs[i].r > favs[j].r
		}
		return favs[i].item < favs[j].item
	})
	fmt.Println("  watched & loved:")
	favGenres := map[int]int{}
	for k := 0; k < 5 && k < len(favs); k++ {
		f := favs[k]
		fmt.Printf("    %-26s rated %.0f  [%s]\n",
			data.ItemTitles[f.item], f.r, genreList(data, f.item))
		for _, g := range data.ItemGenres[f.item] {
			favGenres[g]++
		}
	}

	// CFSF's picks.
	recs := model.Recommend(user, 8)
	fmt.Println("  recommended next:")
	hits := 0
	for _, rec := range recs {
		match := ""
		for _, g := range data.ItemGenres[rec.Item] {
			if favGenres[g] > 0 {
				match = " *taste match*"
				hits++
				break
			}
		}
		fmt.Printf("    %-26s score %.2f  [%s]%s\n",
			data.ItemTitles[rec.Item], rec.Score, genreList(data, rec.Item), match)
	}
	fmt.Printf("  %d/%d recommendations share a genre with the user's top-rated movies\n\n",
		hits, len(recs))
}

func genreList(data *cfsf.SynthDataset, item int) string {
	s := ""
	for k, g := range data.ItemGenres[item] {
		if k > 0 {
			s += "/"
		}
		s += data.GenreNames[g]
	}
	return s
}
