// Quickstart: generate a MovieLens-like dataset, train CFSF, predict one
// rating with its component breakdown, recommend ten movies, and compare
// MAE against the classic item-based (SIR) and user-based (SUR)
// baselines under the paper's Given-10 protocol.
package main

import (
	"fmt"
	"log"

	"cfsf"
)

func main() {
	// 1. Data: 500 users × 1000 items at ≈9.4% density (paper Table I).
	data := cfsf.GenerateSynthetic(cfsf.DefaultSynthConfig())
	m := data.Matrix
	fmt.Printf("dataset: %d users × %d items, %d ratings (density %.2f%%)\n",
		m.NumUsers(), m.NumItems(), m.NumRatings(), 100*m.Density())

	// 2. Train CFSF with the paper's defaults (C=30, λ=0.8, δ=0.1, K=25,
	// M=95; w is read as the smoothed-rating weight, default 0.2 — see DESIGN.md).
	model, err := cfsf.Train(m, cfsf.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("offline phase: GIS %v, clustering %v (%d iters), smoothing %v, iCluster %v\n",
		st.GISDuration.Round(1e6), st.ClusterDuration.Round(1e6),
		st.ClusterIters, st.SmoothDuration.Round(1e6), st.IClusterDuration.Round(1e6))

	// 3. One prediction with its fusion breakdown.
	user, item := 7, 42
	p := model.PredictDetailed(user, item)
	fmt.Printf("predict(user=%d, item=%q): %.2f  (SIR'=%.2f SUR'=%.2f SUIR'=%.2f, local %d×%d)\n",
		user, data.ItemTitles[item], p.Value, p.SIR, p.SUR, p.SUIR, p.ItemsUsed, p.UsersUsed)

	// 4. Top-10 recommendations for the same user.
	fmt.Printf("top recommendations for user %d:\n", user)
	for rank, rec := range model.Recommend(user, 10) {
		fmt.Printf("  %2d. %-24s predicted %.2f\n", rank+1, data.ItemTitles[rec.Item], rec.Score)
	}

	// 5. MAE comparison under ML_300 / Given-10 (paper Table II column).
	split, err := cfsf.MLSplit(m, 300, 200, 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"cfsf", "sur", "sir"} {
		var pred cfsf.Predictor
		if name == "cfsf" {
			pred = cfsf.NewPredictor(cfsf.DefaultConfig())
		} else {
			pred, err = cfsf.NewBaseline(name)
			if err != nil {
				log.Fatal(err)
			}
		}
		res, err := cfsf.Evaluate(pred, split, cfsf.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MAE %-6s = %.4f  (%d targets, fit %v, predict %v)\n",
			name, res.MAE, res.NumTargets, res.FitTime.Round(1e6), res.PredictTime.Round(1e6))
	}
}
