// Package cfsf is the public API of this repository: a complete Go
// implementation of "An Efficient Collaborative Filtering Approach Using
// Smoothing and Fusing" (Zhang et al., ICPP 2009).
//
// The package re-exports the building blocks a downstream application
// needs — the sparse rating matrix, the CFSF model, the baseline
// algorithms of the paper's evaluation, the Given-N protocol and the MAE
// harness — while the heavy machinery lives in internal/ packages.
//
// Quick start:
//
//	data := cfsf.GenerateSynthetic(cfsf.DefaultSynthConfig())
//	model, err := cfsf.Train(data.Matrix, cfsf.DefaultConfig())
//	if err != nil { ... }
//	rating := model.Predict(user, item)
//	top10 := model.Recommend(user, 10)
package cfsf

import (
	"fmt"
	"io"

	"cfsf/internal/baselines"
	"cfsf/internal/core"
	"cfsf/internal/eval"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// Core model types.
type (
	// Config holds every CFSF parameter; see DefaultConfig for the
	// paper's setting.
	Config = core.Config
	// Model is a trained CFSF model (immutable, concurrency-safe).
	Model = core.Model
	// Prediction is a fused prediction with its SIR′/SUR′/SUIR′
	// component breakdown.
	Prediction = core.Prediction
	// Recommendation is one ranked item for a user.
	Recommendation = core.Recommendation
	// Pair identifies one (user, item) request in a prediction batch.
	Pair = core.Pair
	// TrainStats reports offline-phase timing and sizes.
	TrainStats = core.TrainStats
	// RatingUpdate feeds Model.WithUpdates, the incremental refresh that
	// folds new ratings into a trained model without a full retrain
	// (paper §VI future work).
	RatingUpdate = core.RatingUpdate
)

// Data types.
type (
	// Matrix is the immutable sparse item–user rating matrix.
	Matrix = ratings.Matrix
	// MatrixBuilder accumulates ratings into a Matrix.
	MatrixBuilder = ratings.Builder
	// GivenNSplit is the paper's evaluation protocol (§V-A).
	GivenNSplit = ratings.GivenNSplit
	// Target is one held-out rating to predict.
	Target = ratings.Target
	// SynthConfig parameterises the synthetic MovieLens-like generator.
	SynthConfig = synth.Config
	// SynthDataset is a generated matrix plus its latent ground truth.
	SynthDataset = synth.Dataset
)

// Evaluation types.
type (
	// Predictor is the algorithm contract the evaluation harness runs.
	Predictor = eval.Predictor
	// EvalResult reports MAE/RMSE and timing for one evaluation.
	EvalResult = eval.Result
	// EvalOptions configures Evaluate.
	EvalOptions = eval.Options
)

// DefaultConfig returns the paper's parameter setting
// (C=30, λ=0.8, δ=0.1, K=25, M=95, w=0.35).
func DefaultConfig() Config { return core.DefaultConfig() }

// Train runs the CFSF offline phase on m.
func Train(m *Matrix, cfg Config) (*Model, error) { return core.Train(m, cfg) }

// NewMatrixBuilder returns a builder for a numUsers × numItems matrix on
// the 1..5 scale.
func NewMatrixBuilder(numUsers, numItems int) *MatrixBuilder {
	return ratings.NewBuilder(numUsers, numItems)
}

// ReadUDataFile loads a MovieLens u.data file.
func ReadUDataFile(path string) (*Matrix, error) { return ratings.ReadUDataFile(path) }

// WriteUDataFile writes a matrix in u.data format.
func WriteUDataFile(path string, m *Matrix) error { return ratings.WriteUDataFile(path, m) }

// DefaultSynthConfig mirrors the paper's Table I dataset statistics.
func DefaultSynthConfig() SynthConfig { return synth.DefaultConfig() }

// GenerateSynthetic builds a deterministic MovieLens-like dataset.
// It panics on an invalid config; use GenerateSyntheticErr to handle
// configuration errors.
func GenerateSynthetic(cfg SynthConfig) *SynthDataset { return synth.MustGenerate(cfg) }

// GenerateSyntheticErr is GenerateSynthetic with error reporting.
func GenerateSyntheticErr(cfg SynthConfig) (*SynthDataset, error) { return synth.Generate(cfg) }

// MLSplit reproduces the paper's protocol: the first nTrain users train,
// the last nTest users test with `given` revealed ratings each.
func MLSplit(full *Matrix, nTrain, nTest, given int) (*GivenNSplit, error) {
	return ratings.MLSplit(full, nTrain, nTest, given)
}

// Evaluate fits p on the split and returns MAE/RMSE over the held-out
// targets.
func Evaluate(p Predictor, split *GivenNSplit, opts EvalOptions) (EvalResult, error) {
	return eval.Evaluate(p, split, opts)
}

// Ranking metric types (extension beyond the paper's MAE-only protocol).
type (
	// RankingResult aggregates Precision@N / Recall@N / NDCG@N.
	RankingResult = eval.RankingResult
	// RankingOptions configures EvaluateRanking.
	RankingOptions = eval.RankingOptions
)

// EvaluateRanking measures top-N ranking quality of a fitted predictor
// over a split's held-out items (rated-pool protocol). The predictor
// must already be fitted on split.Matrix.
func EvaluateRanking(p Predictor, split *GivenNSplit, opts RankingOptions) RankingResult {
	return eval.EvaluateRanking(p, split, opts)
}

// CFSFPredictor adapts a Config to the Predictor contract so CFSF runs
// under the same harness as the baselines. After Fit, Model() exposes the
// trained model.
type CFSFPredictor struct {
	cfg Config
	mod *core.Model
}

// NewPredictor returns an unfitted CFSF predictor with the given config.
func NewPredictor(cfg Config) *CFSFPredictor { return &CFSFPredictor{cfg: cfg} }

// Fit trains CFSF on m.
func (p *CFSFPredictor) Fit(m *Matrix) error {
	mod, err := core.Train(m, p.cfg)
	if err != nil {
		return err
	}
	p.mod = mod
	return nil
}

// Predict returns the fused CFSF prediction.
func (p *CFSFPredictor) Predict(u, i int) float64 { return p.mod.Predict(u, i) }

// Model returns the trained model (nil before Fit).
func (p *CFSFPredictor) Model() *Model { return p.mod }

// BaselineNames lists the algorithms available from NewBaseline: first
// the paper's comparators in table order, then the extension baselines
// this repository adds (matrix factorisation, Slope One, damped biases).
func BaselineNames() []string {
	return []string{"sir", "sur", "sf", "scbpcc", "emdp", "pd", "am", "mf", "slopeone", "bias", "svd"}
}

// NewBaseline returns an unfitted baseline predictor by name (see
// BaselineNames). Each is constructed with the defaults used in the
// paper's comparison.
func NewBaseline(name string) (Predictor, error) {
	switch name {
	case "sir":
		return &baselines.SIR{}, nil
	case "sur":
		return baselines.NewSUR(), nil
	case "sf":
		return baselines.NewSF(), nil
	case "scbpcc":
		return baselines.NewSCBPCC(), nil
	case "emdp":
		return baselines.NewEMDP(), nil
	case "pd":
		return baselines.NewPD(), nil
	case "am":
		return baselines.NewAM(), nil
	case "mf":
		return baselines.NewMF(), nil
	case "slopeone":
		return baselines.NewSlopeOne(), nil
	case "bias":
		return baselines.NewBias(), nil
	case "svd":
		return baselines.NewSVDCF(), nil
	default:
		return nil, fmt.Errorf("cfsf: unknown baseline %q (have %v)", name, BaselineNames())
	}
}

// LoadModel reads a model snapshot written with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// LoadModelFile reads a model snapshot written with Model.SaveFile.
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }

// ReadRatingsCSVFile loads a MovieLens ratings.csv file
// (userId,movieId,rating[,timestamp] with an optional header row).
func ReadRatingsCSVFile(path string) (*Matrix, error) { return ratings.ReadRatingsCSVFile(path) }

// WriteRatingsCSVFile writes a matrix in ratings.csv format.
func WriteRatingsCSVFile(path string, m *Matrix) error { return ratings.WriteRatingsCSVFile(path, m) }

// ReadRatingsAuto loads a ratings file, dispatching on the extension:
// ".csv" parses the ratings.csv layout, anything else the u.data tabs.
func ReadRatingsAuto(path string) (*Matrix, error) { return ratings.ReadAuto(path) }

// Explanation types: the evidence decomposition behind one prediction
// (Model.Explain).
type (
	// Explanation decomposes one prediction into its item and user
	// evidence.
	Explanation = core.Explanation
	// ItemEvidence is one similar item's contribution to SIR′.
	ItemEvidence = core.ItemEvidence
	// UserEvidence is one like-minded user's contribution to SUR′.
	UserEvidence = core.UserEvidence
)

// Statistics types: paired significance testing and cross-validation.
type (
	// TTestResult is a two-sided paired t-test outcome.
	TTestResult = eval.TTestResult
	// Comparison is a head-to-head evaluation of two methods.
	Comparison = eval.Comparison
	// CVResult aggregates k-fold cross-validation scores.
	CVResult = eval.CVResult
)

// Compare fits two predictors on the same split and tests whether their
// per-target absolute errors differ significantly (paired t-test).
func Compare(a, b Predictor, split *GivenNSplit, opts EvalOptions) (Comparison, error) {
	return eval.Compare(a, b, split, opts)
}

// CrossValidate runs k-fold cross-validation over the matrix's ratings;
// build must return a fresh unfitted predictor per fold.
func CrossValidate(build func() Predictor, m *Matrix, k int, seed int64, opts EvalOptions) (CVResult, error) {
	return eval.CrossValidate(build, m, k, seed, opts)
}
