package cfsf_test

import (
	"fmt"

	"cfsf"
)

// exampleData is a tiny deterministic dataset shared by the runnable
// documentation examples below.
func exampleData() *cfsf.SynthDataset {
	cfg := cfsf.DefaultSynthConfig()
	cfg.Users = 60
	cfg.Items = 80
	cfg.MinPerUser = 10
	cfg.MeanPerUser = 20
	cfg.Archetypes = 6
	cfg.Seed = 7
	return cfsf.GenerateSynthetic(cfg)
}

func exampleConfig() cfsf.Config {
	cfg := cfsf.DefaultConfig()
	cfg.M = 15
	cfg.K = 8
	cfg.Clusters = 6
	return cfg
}

// ExampleTrain shows the minimal train-and-predict flow.
func ExampleTrain() {
	data := exampleData()
	model, err := cfsf.Train(data.Matrix, exampleConfig())
	if err != nil {
		panic(err)
	}
	p := model.Predict(3, 14)
	fmt.Println(p >= 1 && p <= 5)
	// Output: true
}

// ExampleModel_Recommend shows top-N recommendation.
func ExampleModel_Recommend() {
	data := exampleData()
	model, err := cfsf.Train(data.Matrix, exampleConfig())
	if err != nil {
		panic(err)
	}
	recs := model.Recommend(3, 3)
	fmt.Println(len(recs))
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Score < recs[i].Score {
			fmt.Println("unsorted!")
		}
	}
	// Output: 3
}

// ExampleEvaluate shows the paper's Given-N protocol on a baseline.
func ExampleEvaluate() {
	data := exampleData()
	split, err := cfsf.MLSplit(data.Matrix, 40, 20, 5)
	if err != nil {
		panic(err)
	}
	sur, err := cfsf.NewBaseline("sur")
	if err != nil {
		panic(err)
	}
	res, err := cfsf.Evaluate(sur, split, cfsf.EvalOptions{Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.MAE > 0 && res.MAE < 2)
	// Output: true
}

// ExampleModel_WithUpdates shows the incremental refresh (paper §VI
// future work): fold a new rating in without retraining.
func ExampleModel_WithUpdates() {
	data := exampleData()
	model, err := cfsf.Train(data.Matrix, exampleConfig())
	if err != nil {
		panic(err)
	}
	next, err := model.WithUpdates([]cfsf.RatingUpdate{{User: 0, Item: 5, Value: 5}})
	if err != nil {
		panic(err)
	}
	r, ok := next.Matrix().Rating(0, 5)
	fmt.Println(r, ok)
	// Output: 5 true
}

// ExampleNewBaseline lists the algorithms shipped for the paper's
// comparison tables.
func ExampleNewBaseline() {
	for _, name := range cfsf.BaselineNames()[:3] {
		p, err := cfsf.NewBaseline(name)
		if err != nil {
			panic(err)
		}
		_ = p
		fmt.Println(name)
	}
	// Output:
	// sir
	// sur
	// sf
}
