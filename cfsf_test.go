package cfsf_test

import (
	"math"
	"path/filepath"
	"testing"

	"cfsf"
)

// testData generates a compact dataset once per test binary.
var testData = func() *cfsf.SynthDataset {
	cfg := cfsf.DefaultSynthConfig()
	cfg.Users = 150
	cfg.Items = 200
	cfg.MinPerUser = 15
	cfg.MeanPerUser = 30
	cfg.Archetypes = 10
	return cfsf.GenerateSynthetic(cfg)
}()

func testConfig() cfsf.Config {
	cfg := cfsf.DefaultConfig()
	cfg.M = 25
	cfg.K = 12
	cfg.Clusters = 10
	return cfg
}

func TestTrainPredictRecommend(t *testing.T) {
	model, err := cfsf.Train(testData.Matrix, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := model.Predict(3, 7)
	if v < 1 || v > 5 || math.IsNaN(v) {
		t.Fatalf("Predict = %g outside scale", v)
	}
	recs := model.Recommend(3, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	p := model.PredictDetailed(3, 7)
	if p.Value != v {
		t.Errorf("PredictDetailed.Value %g != Predict %g", p.Value, v)
	}
}

func TestPredictorAdapter(t *testing.T) {
	p := cfsf.NewPredictor(testConfig())
	if p.Model() != nil {
		t.Error("Model() must be nil before Fit")
	}
	if err := p.Fit(testData.Matrix); err != nil {
		t.Fatal(err)
	}
	if p.Model() == nil {
		t.Error("Model() must be set after Fit")
	}
	if v := p.Predict(0, 0); v < 1 || v > 5 {
		t.Errorf("adapter Predict = %g", v)
	}
}

func TestNewBaselineNames(t *testing.T) {
	for _, name := range cfsf.BaselineNames() {
		p, err := cfsf.NewBaseline(name)
		if err != nil {
			t.Fatalf("NewBaseline(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("NewBaseline(%q) returned nil", name)
		}
	}
	if _, err := cfsf.NewBaseline("nope"); err == nil {
		t.Error("unknown baseline must error")
	}
}

func TestEvaluateFacade(t *testing.T) {
	split, err := cfsf.MLSplit(testData.Matrix, 100, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cfsf.Evaluate(cfsf.NewPredictor(testConfig()), split, cfsf.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MAE) || res.MAE <= 0 || res.MAE > 2.5 {
		t.Errorf("implausible MAE %g", res.MAE)
	}
	if res.RMSE < res.MAE {
		t.Errorf("RMSE %g < MAE %g", res.RMSE, res.MAE)
	}
}

// TestHeadlineResult is the integration check of the paper's central
// claim on this repository's dataset: CFSF beats both traditional
// baselines under the Given-10 protocol.
func TestHeadlineResult(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size dataset")
	}
	data := cfsf.GenerateSynthetic(cfsf.DefaultSynthConfig())
	split, err := cfsf.MLSplit(data.Matrix, 300, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	mae := map[string]float64{}
	res, err := cfsf.Evaluate(cfsf.NewPredictor(cfsf.DefaultConfig()), split, cfsf.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mae["cfsf"] = res.MAE
	for _, name := range []string{"sur", "sir"} {
		b, err := cfsf.NewBaseline(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := cfsf.Evaluate(b, split, cfsf.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mae[name] = r.MAE
	}
	if mae["cfsf"] >= mae["sur"] || mae["cfsf"] >= mae["sir"] {
		t.Errorf("CFSF %.4f must beat SUR %.4f and SIR %.4f (paper Table II)",
			mae["cfsf"], mae["sur"], mae["sir"])
	}
}

func TestMatrixBuilderFacade(t *testing.T) {
	b := cfsf.NewMatrixBuilder(2, 3)
	if err := b.Add(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	m := b.Build()
	if m.NumUsers() != 2 || m.NumItems() != 3 || m.NumRatings() != 1 {
		t.Error("builder facade mismatch")
	}
}

func TestUDataFacadeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.data")
	if err := cfsf.WriteUDataFile(path, testData.Matrix); err != nil {
		t.Fatal(err)
	}
	m, err := cfsf.ReadUDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRatings() != testData.Matrix.NumRatings() {
		t.Errorf("round trip ratings %d, want %d", m.NumRatings(), testData.Matrix.NumRatings())
	}
}

func TestGenerateSyntheticErr(t *testing.T) {
	bad := cfsf.DefaultSynthConfig()
	bad.Users = 0
	if _, err := cfsf.GenerateSyntheticErr(bad); err == nil {
		t.Error("invalid synth config must error")
	}
}
